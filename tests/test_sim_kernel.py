"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import Barrier, Event, SimError, Simulator


class TestDelays:
    def test_single_process_advances_time(self):
        sim = Simulator()
        log = []

        def proc():
            yield 10
            log.append(sim.now)
            yield 5
            log.append(sim.now)

        sim.spawn(proc())
        assert sim.run() == 15
        assert log == [10, 15]

    def test_interleaving_is_time_ordered(self):
        sim = Simulator()
        log = []

        def proc(name, delay):
            yield delay
            log.append((sim.now, name))
            yield delay
            log.append((sim.now, name))

        sim.spawn(proc("a", 3))
        sim.spawn(proc("b", 5))
        sim.run()
        assert log == [(3, "a"), (5, "b"), (6, "a"), (10, "b")]

    def test_zero_delay_keeps_time(self):
        sim = Simulator()

        def proc():
            yield 0
            assert sim.now == 0

        sim.spawn(proc())
        sim.run()

    def test_negative_delay_rejected(self):
        sim = Simulator()

        def proc():
            yield -1

        sim.spawn(proc())
        with pytest.raises(SimError):
            sim.run()

    def test_bad_yield_rejected(self):
        sim = Simulator()

        def proc():
            yield "soon"

        sim.spawn(proc())
        with pytest.raises(SimError):
            sim.run()

    def test_bool_yield_rejected(self):
        sim = Simulator()

        def proc():
            yield True

        sim.spawn(proc())
        with pytest.raises(SimError):
            sim.run()

    def test_run_until_stops_early(self):
        sim = Simulator()

        def proc():
            yield 100

        sim.spawn(proc())
        assert sim.run(until=50) == 50

    def test_at_callback(self):
        sim = Simulator()
        fired = []
        sim.at(7, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [7]

    def test_live_process_count(self):
        sim = Simulator()

        def proc():
            yield 1

        sim.spawn(proc())
        sim.spawn(proc())
        assert sim.live_processes == 2
        sim.run()
        assert sim.live_processes == 0


class TestEvents:
    def test_event_wakes_waiter(self):
        sim = Simulator()
        event = sim.event()
        log = []

        def waiter():
            yield event
            log.append(("woke", sim.now, event.value))

        def trigger():
            yield 20
            event.trigger("payload")

        sim.spawn(waiter())
        sim.spawn(trigger())
        sim.run()
        assert log == [("woke", 20, "payload")]

    def test_wait_on_triggered_event_continues_immediately(self):
        sim = Simulator()
        event = sim.event()
        event.trigger()
        log = []

        def waiter():
            yield 5
            yield event
            log.append(sim.now)

        sim.spawn(waiter())
        sim.run()
        assert log == [5]

    def test_double_trigger_rejected(self):
        sim = Simulator()
        event = sim.event()
        event.trigger()
        with pytest.raises(SimError):
            event.trigger()

    def test_multiple_waiters_all_wake(self):
        sim = Simulator()
        event = sim.event()
        woke = []

        def waiter(name):
            yield event
            woke.append(name)

        for name in "abc":
            sim.spawn(waiter(name))
        sim.at(3, event.trigger)
        sim.run()
        assert sorted(woke) == ["a", "b", "c"]


class TestBarrier:
    def test_barrier_releases_together(self):
        sim = Simulator()
        barrier = sim.barrier(3)
        release_times = []

        def worker(delay):
            yield delay
            yield barrier.wait()
            release_times.append(sim.now)

        for delay in (5, 10, 20):
            sim.spawn(worker(delay))
        sim.run()
        assert release_times == [20, 20, 20]
        assert barrier.generations == 1

    def test_barrier_is_reusable(self):
        sim = Simulator()
        barrier = sim.barrier(2)
        log = []

        def worker(name, delays):
            for delay in delays:
                yield delay
                yield barrier.wait()
                log.append((name, sim.now))

        sim.spawn(worker("a", [1, 1]))
        sim.spawn(worker("b", [4, 2]))
        sim.run()
        assert barrier.generations == 2
        assert [t for _, t in log] == [4, 4, 6, 6]

    def test_bad_party_count(self):
        with pytest.raises(SimError):
            Simulator().barrier(0)
