"""Unit tests for trace serialisation."""

import io

import pytest

from repro.isa import Interpreter, assemble, branch, load, mhrr_jump, store
from repro.isa.tracefile import (
    TraceFormatError,
    format_inst,
    parse_line,
    read_trace,
    write_trace,
)


def roundtrip(inst):
    return parse_line(format_inst(inst))


class TestRoundTrip:
    def test_load(self):
        inst = load(0x1234, dest=5, srcs=(6,), pc=0x40)
        out = roundtrip(inst)
        assert (out.op, out.dest, out.srcs, out.addr, out.pc) == (
            inst.op, inst.dest, inst.srcs, inst.addr, inst.pc)
        assert out.informing

    def test_non_informing_store(self):
        inst = store(0x200, srcs=(1, 2), pc=0x44, informing=False)
        out = roundtrip(inst)
        assert out.is_store and not out.informing
        assert out.srcs == (1, 2)

    def test_branch_outcomes(self):
        for taken in (True, False):
            out = roundtrip(branch(taken, srcs=(3,), pc=0x48))
            assert out.taken is taken

    def test_handler_code_flag(self):
        out = roundtrip(mhrr_jump(pc=0x100))
        assert out.handler_code

    def test_full_program_roundtrip(self):
        program = assemble("""
            li r1, 0x100
            li r2, 4
            loop:
                ld r3, 0(r1)
                st r3, 64(r1)
                addi r1, r1, 4
                addi r2, r2, -1
                bne r2, r0, loop
            halt
        """)
        trace = Interpreter(program).trace()
        buffer = io.StringIO()
        count = write_trace(iter(trace), buffer, header="test trace")
        assert count == len(trace)
        buffer.seek(0)
        restored = list(read_trace(buffer))
        assert len(restored) == len(trace)
        for a, b in zip(trace, restored):
            assert (a.op, a.dest, a.srcs, a.addr, a.taken, a.pc) == (
                b.op, b.dest, b.srcs, b.addr, b.taken, b.pc)


class TestErrors:
    def test_bad_op(self):
        with pytest.raises(TraceFormatError, match="bad op"):
            parse_line("FROB pc=0", 3)

    def test_unknown_field(self):
        with pytest.raises(TraceFormatError, match="unknown field"):
            parse_line("IALU pc=0 zz=1", 7)

    def test_semantic_error_carries_line(self):
        with pytest.raises(TraceFormatError, match="line 9"):
            parse_line("LOAD pc=0 d=1", 9)  # missing address

    def test_comments_and_blanks_skipped(self):
        text = "# header\n\nIALU pc=4 d=1\n"
        restored = list(read_trace(io.StringIO(text)))
        assert len(restored) == 1
