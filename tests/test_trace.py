"""repro.trace core: context propagation, spans, sampling, the flight
recorder and the export formats."""

import json
import os

import pytest

from repro.trace import (
    ENV_PARENT,
    ENV_SAMPLE,
    ambient,
    clear_ambient,
    maybe_tracer,
    set_ambient,
    trace_sample,
)
from repro.trace.context import (
    TraceContext,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)
from repro.trace.exporters import read_spans, spans_to_chrome, spans_to_otlp
from repro.trace.flight import FLIGHT_CAPACITY, FlightRecorder
from repro.trace.span import SPAN_SCHEMA, Tracer


@pytest.fixture(autouse=True)
def _clean_trace_env(monkeypatch):
    for var in (ENV_PARENT, ENV_SAMPLE, "REPRO_TRACE_SPANS"):
        monkeypatch.delenv(var, raising=False)
    clear_ambient()
    yield
    clear_ambient()


class TestTraceparent:
    def test_round_trip(self):
        ctx = TraceContext(new_trace_id(), new_span_id(), sampled=True)
        parsed = parse_traceparent(format_traceparent(ctx))
        assert parsed == ctx

    def test_unsampled_flag_round_trips(self):
        ctx = TraceContext(new_trace_id(), new_span_id(), sampled=False)
        header = format_traceparent(ctx)
        assert header.endswith("-00")
        assert parse_traceparent(header).sampled is False

    @pytest.mark.parametrize("header", [
        None,
        "",
        "garbage",
        "00-abc-def-01",                            # wrong lengths
        "00-" + "g" * 32 + "-" + "1" * 16 + "-01",  # non-hex trace id
        "00-" + "0" * 32 + "-" + "1" * 16 + "-01",  # all-zero trace id
        "00-" + "1" * 32 + "-" + "0" * 16 + "-01",  # all-zero span id
        "ff-" + "1" * 32 + "-" + "2" * 16 + "-01",  # forbidden version
        "00-" + "1" * 32 + "-" + "2" * 16,          # missing flags
        "00-" + "1" * 32 + "-" + "2" * 16 + "-01-extra-extra",
    ])
    def test_malformed_headers_parse_to_none(self, header):
        assert parse_traceparent(header) is None

    def test_child_keeps_trace_id(self):
        ctx = TraceContext(new_trace_id(), new_span_id())
        child = ctx.child()
        assert child.trace_id == ctx.trace_id
        assert child.span_id != ctx.span_id


class TestTracer:
    def test_fresh_trace_roots_have_no_parent(self):
        tracer = Tracer()
        span = tracer.start_span("run")
        assert span.parent_id is None

    def test_propagated_context_parents_root_spans(self):
        ctx = TraceContext(new_trace_id(), new_span_id())
        tracer = Tracer(ctx)
        span = tracer.start_span("http.request")
        assert span.trace_id == ctx.trace_id
        assert span.parent_id == ctx.span_id

    def test_span_scope_marks_errors(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom") as span:
                raise ValueError("no")
        assert span.status == "error"
        assert span.end is not None

    def test_explicit_parent_wins(self):
        tracer = Tracer(TraceContext(new_trace_id(), new_span_id()))
        parent = tracer.start_span("outer")
        child = tracer.start_span("inner", parent=parent)
        assert child.parent_id == parent.span_id

    def test_flush_appends_once(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        tracer = Tracer()
        span = tracer.start_span("a", label="x")
        span.finish()
        assert tracer.flush(path) == 1
        assert tracer.flush(path) == 0  # nothing new
        tracer.start_span("b").finish()
        assert tracer.flush(path) == 1
        records, bad = read_spans(path)
        assert bad == 0
        assert [r["name"] for r in records] == ["a", "b"]
        assert all(r["schema"] == SPAN_SCHEMA for r in records)
        assert records[0]["attrs"] == {"label": "x"}

    def test_flush_closes_unfinished_spans(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        tracer = Tracer()
        tracer.start_span("dangling")
        tracer.flush(path)
        records, _ = read_spans(path)
        assert records[0]["status"] == "unfinished"
        assert records[0]["end"] >= records[0]["start"]

    def test_flush_without_path_is_a_noop(self):
        tracer = Tracer()
        tracer.start_span("a").finish()
        assert tracer.flush(None) == 0
        assert tracer.flush("") == 0

    def test_flush_failure_never_raises(self, tmp_path):
        tracer = Tracer()
        tracer.start_span("a").finish()
        target = tmp_path / "dir-not-file"
        target.mkdir()
        assert tracer.flush(str(target)) == 0
        assert tracer.flush_errors == 1


class TestSampling:
    def test_default_is_off(self):
        assert trace_sample() == 0.0
        assert maybe_tracer() is None

    def test_explicit_rate_one_traces(self):
        assert maybe_tracer(1.0) is not None

    def test_env_rate(self, monkeypatch):
        monkeypatch.setenv(ENV_SAMPLE, "1.0")
        assert trace_sample() == 1.0
        assert maybe_tracer() is not None

    def test_malformed_env_rate_is_off(self, monkeypatch):
        monkeypatch.setenv(ENV_SAMPLE, "lots")
        assert trace_sample() == 0.0

    def test_rate_is_clamped(self):
        assert trace_sample(7.5) == 1.0
        assert trace_sample(-2.0) == 0.0

    def test_sampled_parent_wins_over_local_rate(self):
        header = format_traceparent(
            TraceContext(new_trace_id(), new_span_id(), sampled=True))
        tracer = maybe_tracer(0.0, parent=header)
        assert tracer is not None
        assert tracer.trace_id == header.split("-")[1]

    def test_unsampled_parent_disables_tracing(self):
        header = format_traceparent(
            TraceContext(new_trace_id(), new_span_id(), sampled=False))
        assert maybe_tracer(1.0, parent=header) is None

    def test_malformed_parent_falls_back_to_rate(self):
        assert maybe_tracer(0.0, parent="garbage") is None
        assert maybe_tracer(1.0, parent="garbage") is not None

    def test_env_parent_is_honored(self, monkeypatch):
        header = format_traceparent(
            TraceContext(new_trace_id(), new_span_id(), sampled=True))
        monkeypatch.setenv(ENV_PARENT, header)
        tracer = maybe_tracer(0.0)
        assert tracer is not None
        assert tracer.trace_id == header.split("-")[1]

    def test_ambient_round_trip(self):
        tracer = Tracer()
        span = tracer.start_span("run")
        set_ambient(tracer, span)
        assert ambient() == (tracer, span)
        clear_ambient()
        assert ambient() == (None, None)


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        recorder = FlightRecorder(capacity=4)
        for index in range(10):
            recorder.note("tick", index=index)
        stats = recorder.stats()
        assert stats["depth"] == 4
        assert stats["records"] == 10
        assert stats["dropped"] == 6
        assert [r["index"] for r in recorder.tail(4)] == [6, 7, 8, 9]

    def test_default_capacity(self):
        assert FlightRecorder().stats()["capacity"] == FLIGHT_CAPACITY

    def test_dump_writes_ring_snapshot(self, tmp_path):
        recorder = FlightRecorder(capacity=8)
        recorder.note("job.started", key="abc")
        path = recorder.dump("pool broken!", str(tmp_path))
        assert path is not None
        assert os.path.basename(path).startswith("flight_pool_broken_")
        payload = json.loads(open(path).read())
        assert payload["reason"] == "pool broken!"
        assert payload["events"][0]["kind"] == "job.started"
        assert recorder.stats()["dumps"] == 1

    def test_dump_failure_never_raises(self, tmp_path):
        recorder = FlightRecorder(capacity=2)
        recorder.note("x")
        not_a_dir = tmp_path / "occupied"
        not_a_dir.write_text("a file where the dump dir should go")
        assert recorder.dump("r", str(not_a_dir)) is None
        assert recorder.stats()["dump_errors"] == 1


class TestExporters:
    def _records(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        tracer = Tracer()
        root = tracer.start_span("run", label="grid")
        child = tracer.start_span("job", parent=root)
        child.finish("error")
        root.finish()
        tracer.flush(path)
        return path

    def test_read_spans_skips_torn_tail(self, tmp_path):
        path = self._records(tmp_path)
        with open(path, "a") as fh:
            fh.write('{"span_id": "trunc')  # SIGKILL mid-write
        records, bad = read_spans(path)
        assert len(records) == 2
        assert bad == 1

    def test_chrome_export_shape(self, tmp_path):
        records, _ = read_spans(self._records(tmp_path))
        chrome = spans_to_chrome(records)
        events = chrome["traceEvents"]
        assert [e["ph"] for e in events] == ["X", "X"]
        assert events[0]["args"]["label"] == "grid"
        assert events[1]["args"]["parent_id"] == records[0]["span_id"]

    def test_otlp_export_shape(self, tmp_path):
        records, _ = read_spans(self._records(tmp_path))
        otlp = spans_to_otlp(records)
        spans = otlp["resourceSpans"][0]["scopeSpans"][0]["spans"]
        assert spans[0]["traceId"] == records[0]["trace_id"]
        assert spans[1]["parentSpanId"] == records[0]["span_id"]
        assert spans[1]["status"]["code"] == 2  # error
        assert int(spans[0]["endTimeUnixNano"]) >= int(
            spans[0]["startTimeUnixNano"])
