"""Unit tests for context-switch-on-miss multithreading (§4.1.3)."""

import pytest

from repro.apps import simulate_multithreading
from repro.isa import alu, load
from tests.helpers import small_hierarchy


def memory_bound_thread(tid, n=400):
    """Loads to fresh lines (long misses) with a little compute."""
    def factory():
        base = 0x1000000 * (tid + 1)
        for i in range(n):
            yield load(base + 64 * i, dest=2, pc=0x1000 + 8 * tid)
            yield alu(dest=3, srcs=(2,), pc=0x1004 + 8 * tid)
    return factory


def compute_thread(tid, n=400):
    def factory():
        for i in range(n):
            yield alu(dest=2, pc=0x2000 + 4 * tid)
    return factory


class TestMultithreading:
    def test_switching_beats_blocking_on_memory_bound_threads(self):
        blocking = simulate_multithreading(
            [memory_bound_thread(t) for t in range(4)],
            small_hierarchy(), switch_on_miss=False)
        switching = simulate_multithreading(
            [memory_bound_thread(t) for t in range(4)],
            small_hierarchy(), switch_on_miss=True, switch_cost=24)
        assert switching.switches > 0
        assert switching.ipc > blocking.ipc

    def test_single_thread_cannot_switch(self):
        result = simulate_multithreading(
            [memory_bound_thread(0)], small_hierarchy(),
            switch_on_miss=True)
        assert result.switches == 0

    def test_huge_switch_cost_not_worth_it(self):
        cheap = simulate_multithreading(
            [memory_bound_thread(t) for t in range(4)],
            small_hierarchy(), switch_cost=10)
        expensive = simulate_multithreading(
            [memory_bound_thread(t) for t in range(4)],
            small_hierarchy(), switch_cost=400)
        assert cheap.ipc > expensive.ipc

    def test_secondary_only_filters_cheap_misses(self):
        # Working set resident in L2: all misses are primary-to-L2, which
        # secondary_only ignores.
        def l2_thread(tid):
            def factory():
                base = 0x100000
                for i in range(300):
                    yield load(base + 64 * (i % 24), dest=2, pc=0x1000)
            return factory

        result = simulate_multithreading(
            [l2_thread(t) for t in range(2)], small_hierarchy(),
            secondary_only=True)
        # After the handful of cold memory misses, no switches occur.
        assert result.switches <= 24 * 2

    def test_compute_threads_never_switch(self):
        result = simulate_multithreading(
            [compute_thread(t) for t in range(3)], small_hierarchy())
        assert result.switches == 0
        assert result.instructions == 3 * 400

    def test_all_work_completes(self):
        result = simulate_multithreading(
            [memory_bound_thread(t, n=100) for t in range(3)],
            small_hierarchy(), max_instructions=10_000)
        assert result.instructions == 3 * 200

    def test_empty_thread_list_rejected(self):
        with pytest.raises(ValueError):
            simulate_multithreading([], small_hierarchy())

    def test_overhead_accounted(self):
        result = simulate_multithreading(
            [memory_bound_thread(t) for t in range(4)],
            small_hierarchy(), switch_cost=24)
        assert result.switch_overhead_instructions == 24 * result.switches
