"""Unit tests for branch predictors."""

import pytest

from repro.branch import (
    AlwaysTakenPredictor,
    StaticNotTakenPredictor,
    TwoBitCounterPredictor,
)


class TestTwoBitCounters:
    def test_initially_weakly_not_taken(self):
        predictor = TwoBitCounterPredictor(entries=16)
        assert predictor.predict(0x100) is False

    def test_learns_taken_after_one_update_from_weak_state(self):
        predictor = TwoBitCounterPredictor(entries=16)
        predictor.update(0x100, True)  # weakly-not-taken -> weakly-taken
        assert predictor.predict(0x100) is True

    def test_strongly_not_taken_needs_two_updates(self):
        predictor = TwoBitCounterPredictor(entries=16)
        predictor.update(0x100, False)  # drive to strongly-not-taken
        predictor.update(0x100, True)
        assert predictor.predict(0x100) is False
        predictor.update(0x100, True)
        assert predictor.predict(0x100) is True

    def test_hysteresis(self):
        predictor = TwoBitCounterPredictor(entries=16)
        for _ in range(4):
            predictor.update(0x100, True)
        predictor.update(0x100, False)  # one not-taken does not flip it
        assert predictor.predict(0x100) is True
        predictor.update(0x100, False)
        predictor.update(0x100, False)
        assert predictor.predict(0x100) is False

    def test_counters_saturate(self):
        predictor = TwoBitCounterPredictor(entries=16)
        for _ in range(100):
            predictor.update(0x100, False)
        predictor.update(0x100, True)
        predictor.update(0x100, True)
        assert predictor.predict(0x100) is True

    def test_aliasing_by_table_index(self):
        predictor = TwoBitCounterPredictor(entries=4)
        predictor.update(0x0, True)
        predictor.update(0x0, True)
        # pc 0x40 maps to the same entry ((0x40 >> 2) & 3 == 0).
        assert predictor.predict(0x40) is True

    def test_loop_branch_accuracy_is_high(self):
        predictor = TwoBitCounterPredictor(entries=64)
        correct = 0
        total = 0
        for _ in range(100):       # 100 loop visits, 10 iterations each
            for i in range(10):
                taken = i < 9
                if predictor.predict(0x200) == taken:
                    correct += 1
                else:
                    predictor.record_mispredict()
                predictor.update(0x200, taken)
                total += 1
        assert correct / total > 0.85
        assert predictor.accuracy > 0.85

    def test_bad_entries_rejected(self):
        with pytest.raises(ValueError):
            TwoBitCounterPredictor(entries=12)
        with pytest.raises(ValueError):
            TwoBitCounterPredictor(entries=0)


class TestStaticPredictors:
    def test_not_taken(self):
        predictor = StaticNotTakenPredictor()
        assert predictor.predict(0x1) is False
        predictor.update(0x1, True)
        assert predictor.predict(0x1) is False

    def test_always_taken(self):
        predictor = AlwaysTakenPredictor()
        assert predictor.predict(0x1) is True
