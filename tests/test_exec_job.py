"""Cache-key stability and the SimJob model.

The content address must be: stable for equal fields (including across
interpreter processes — no dict-ordering or hash-randomization leakage),
and sensitive to every outcome-determining field, seed and instruction
count included.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.exec import SCHEMA_VERSION, SimJob, execute_job
from repro.exec.job import bar_result_from_dict


def bar_job(**overrides):
    fields = dict(benchmark="espresso", machine="ooo", label="S10",
                  instructions=4000, warmup=1000, seed=0)
    fields.update(overrides)
    return SimJob.bar(**fields)


class TestCacheKeyStability:
    def test_same_fields_same_key(self):
        assert bar_job().cache_key() == bar_job().cache_key()

    def test_key_is_hex_sha256(self):
        key = bar_job().cache_key()
        assert len(key) == 64
        int(key, 16)  # parses as hex

    def test_same_key_across_processes(self):
        """PYTHONHASHSEED must not leak into the content address."""
        code = (
            "from repro.exec import SimJob;"
            "print(SimJob.bar(benchmark='espresso', machine='ooo',"
            " label='S10', instructions=4000, warmup=1000,"
            " seed=0).cache_key())"
        )
        src = str(Path(__file__).resolve().parents[1] / "src")
        keys = set()
        for hashseed in ("1", "2"):
            out = subprocess.run(
                [sys.executable, "-c", code],
                env={"PYTHONPATH": src, "PYTHONHASHSEED": hashseed},
                capture_output=True, text=True, check=True)
            keys.add(out.stdout.strip())
        keys.add(bar_job().cache_key())
        assert len(keys) == 1

    @pytest.mark.parametrize("change", [
        dict(benchmark="ora"),
        dict(machine="inorder"),
        dict(label="S1"),
        dict(instructions=4001),
        dict(warmup=999),
        dict(seed=7),
    ])
    def test_any_field_change_changes_key(self, change):
        assert bar_job().cache_key() != bar_job(**change).cache_key()

    def test_kind_changes_key(self):
        bar = bar_job()
        coh = SimJob.access_control(
            workload="espresso", method="INFORMING",
            machine_params={"processors": 2})
        assert bar.cache_key() != coh.cache_key()

    def test_machine_params_change_key(self):
        a = SimJob.access_control(workload="mixed", method="ECC",
                                  machine_params={"message_latency": 300})
        b = SimJob.access_control(workload="mixed", method="ECC",
                                  machine_params={"message_latency": 900})
        assert a.cache_key() != b.cache_key()

    def test_schema_version_in_key(self, monkeypatch):
        before = bar_job().cache_key()
        monkeypatch.setattr("repro.exec.job.SCHEMA_VERSION",
                            SCHEMA_VERSION + 1)
        assert bar_job().cache_key() != before


class TestSerialization:
    def test_dict_roundtrip(self):
        job = bar_job(seed=3)
        clone = SimJob.from_dict(job.to_dict())
        assert clone == job
        assert clone.cache_key() == job.cache_key()

    def test_config_dict_order_does_not_matter(self):
        a = SimJob.access_control(
            workload="mixed", method="ECC",
            machine_params={"processors": 4, "message_latency": 300})
        b = SimJob.access_control(
            workload="mixed", method="ECC",
            machine_params={"message_latency": 300, "processors": 4})
        assert a == b
        assert a.cache_key() == b.cache_key()

    def test_label_is_readable(self):
        assert bar_job().label == "espresso/ooo/S10"

    def test_jobs_are_hashable(self):
        assert len({bar_job(), bar_job(), bar_job(seed=1)}) == 2


class TestExecution:
    def test_unknown_kind_rejected(self):
        job = SimJob(kind="nope", machine="ooo", benchmark="x",
                     instructions=1, warmup=0)
        with pytest.raises(ValueError, match="unknown job kind"):
            execute_job(job)

    def test_bar_job_matches_direct_run_bar(self):
        from repro.harness.runner import bar_config, run_bar

        job = bar_job(instructions=2000, warmup=500)
        via_job = bar_result_from_dict(execute_job(job))
        direct = run_bar("espresso", "ooo", bar_config("S10"), 2000, 500)
        assert via_job == direct

    def test_access_control_job_matches_direct_run(self):
        from dataclasses import asdict

        from repro.coherence import (
            AccessControlMethod,
            CoherenceMachineParams,
            run_access_control_experiment,
        )
        from repro.workloads.parallel import PARALLEL_KERNELS

        machine = CoherenceMachineParams()
        job = SimJob.access_control(workload="mixed", method="ECC",
                                    machine_params=asdict(machine))
        result = execute_job(job)
        direct = run_access_control_experiment(
            PARALLEL_KERNELS["mixed"], AccessControlMethod.ECC,
            machine=machine, name="mixed")
        assert result["execution_time"] == direct.execution_time
        assert result["remote_invalidations"] == direct.remote_invalidations


class TestPolicyKeyStability:
    """The replacement-policy field and the pre-registry key space.

    Every result cached before the policy registry existed was keyed
    with no ``policy`` entry in the config.  The default "lru" must keep
    hashing to that same address (so old caches and the golden captures
    stay reachable), while any non-default policy must move the key.
    """

    def test_default_policy_is_omitted_from_config(self):
        assert "policy" not in bar_job().config_dict()
        assert "policy" not in bar_job(policy="lru").config_dict()

    def test_explicit_lru_matches_pre_registry_key(self):
        assert bar_job(policy="lru").cache_key() == bar_job().cache_key()

    @pytest.mark.parametrize("policy",
                             ["fifo", "random", "plru", "rrip", "brrip"])
    def test_non_default_policy_changes_key(self, policy):
        assert bar_job(policy=policy).cache_key() != bar_job().cache_key()
        assert bar_job(policy=policy).config_dict()["policy"] == policy

    def test_distinct_policies_get_distinct_keys(self):
        keys = {bar_job(policy=p).cache_key()
                for p in ("lru", "fifo", "random", "plru", "rrip", "brrip")}
        assert len(keys) == 6
