"""Kill-and-resume: a journaled grid continues exactly where it died."""

import json
import os

import pytest

from repro.durable import JournalError, load_run_state, read_records
from repro.durable.resume import resume_main
from repro.exec import ExecOptions, JobFailedError, JobRunner, SimJob
from repro.sanitize.chaos import flip_byte

# -- pluggable payloads (module-level: picklable by reference) ---------------


def tracking_execute(job):
    """Count executions in ``<benchmark>.runs``; a ``<benchmark>.boom``
    sentinel file makes the cell fatally fail (the benchmark field
    carries a scratch path, the same trick the engine tests use)."""
    base = job.benchmark
    if os.path.exists(base + ".boom"):
        raise ValueError("chaos: fatal cell")
    count_path = base + ".runs"
    runs = 0
    if os.path.exists(count_path):
        with open(count_path) as fh:
            runs = int(fh.read())
    runs += 1
    with open(count_path, "w") as fh:
        fh.write(str(runs))
    return {"label": job.label, "cell": os.path.basename(base),
            "runs": runs}


def always_transient(job):
    from repro.exec import TransientJobError

    count_path = job.benchmark + ".runs"
    runs = 0
    if os.path.exists(count_path):
        with open(count_path) as fh:
            runs = int(fh.read())
    with open(count_path, "w") as fh:
        fh.write(str(runs + 1))
    raise TransientJobError("chaos: never succeeds")


def scratch_job(base, label="L"):
    return SimJob.bar(benchmark=str(base), machine="m", label=label,
                      instructions=1, warmup=0, seed=0)


def runs_count(base) -> int:
    path = str(base) + ".runs"
    if not os.path.exists(path):
        return 0
    with open(path) as fh:
        return int(fh.read())


@pytest.fixture
def roots(tmp_path):
    return {"cache": str(tmp_path / "cache"),
            "runs": str(tmp_path / "runs"),
            "scratch": tmp_path}


def options(roots, **overrides):
    fields = dict(jobs=1, cache=True, cache_dir=roots["cache"],
                  manifest_dir=roots["runs"], backoff=0.01,
                  journal_fsync="off")
    fields.update(overrides)
    return ExecOptions(**fields)


def interrupted_run(roots, names=("a", "b", "c", "d"), boom="c"):
    """Run a grid that dies at cell *boom*; returns (jobs, run_id)."""
    jobs = [scratch_job(roots["scratch"] / name, label=name)
            for name in names]
    (roots["scratch"] / f"{boom}.boom").write_text("armed")
    runner = JobRunner(options(roots), execute=tracking_execute)
    with pytest.raises(JobFailedError):
        runner.run(jobs)
    (roots["scratch"] / f"{boom}.boom").unlink()
    assert runner.last_run_id and runner.last_journal
    return jobs, runner.last_run_id


class TestLoadRunState:
    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(JournalError, match="no run journal"):
            load_run_state("no-such-run", str(tmp_path))

    def test_folds_completion_state(self, roots):
        jobs, run_id = interrupted_run(roots)
        state = load_run_state(run_id, roots["runs"])
        assert state.run_id == run_id
        assert state.keys == [job.cache_key() for job in jobs]
        done = {jobs[0].cache_key(), jobs[1].cache_key()}
        assert set(state.completed) == done
        assert state.incomplete == [jobs[2].cache_key(),
                                    jobs[3].cache_key()]
        assert state.ended == "failed"
        assert not state.truncated
        rebuilt = state.jobs()
        assert [j.cache_key() for j in rebuilt] == state.keys

    def test_torn_tail_trusted_prefix(self, roots):
        from repro.sanitize.chaos import truncate_tail

        jobs, run_id = interrupted_run(roots)
        path = os.path.join(roots["runs"], run_id, "journal.jsonl")
        truncate_tail(path, 10)
        state = load_run_state(run_id, roots["runs"])
        assert state.truncated and state.bad_lines >= 1
        assert state.job_records  # the grid announcement is intact

    def test_resume_cli_rejects_headerless_file(self, tmp_path, capsys):
        bogus = tmp_path / "journal.jsonl"
        bogus.write_text("deadbeef not a journal\n")
        assert resume_main([str(bogus)]) == 2
        assert "header" in capsys.readouterr().err


class TestResumeEngine:
    def test_completed_cells_replay_not_rerun(self, roots):
        jobs, run_id = interrupted_run(roots)
        state = load_run_state(run_id, roots["runs"])
        resumed = JobRunner(options(roots), execute=tracking_execute)
        results = resumed.run(state.jobs(), resume=state)
        assert resumed.stats.replayed == 2
        assert resumed.stats.executed == 2
        assert resumed.stats.finished == 4
        # a and b ran exactly once, ever — the resume replayed them.
        assert runs_count(roots["scratch"] / "a") == 1
        assert runs_count(roots["scratch"] / "b") == 1
        assert runs_count(roots["scratch"] / "c") == 1
        # Digit-exact vs a never-interrupted run of the same grid.
        fresh = [{"label": j.label,
                  "cell": os.path.basename(j.benchmark), "runs": 1}
                 for j in jobs]
        assert results == fresh

    def test_resumed_journal_links_and_is_replayable(self, roots):
        _, run_id = interrupted_run(roots)
        state = load_run_state(run_id, roots["runs"])
        resumed = JobRunner(
            options(roots, run_meta={"resumed_from": run_id}),
            execute=tracking_execute)
        resumed.run(state.jobs(), resume=state)
        # The resumed run wrote its own journal under its own run id...
        assert resumed.last_run_id != run_id
        records, _, truncated = read_records(resumed.last_journal)
        assert not truncated
        recs = [r["rec"] for r in records]
        assert recs.count("job_finish") == 4
        # ... and its manifest links back to the run it continued.
        with open(resumed.last_manifest) as fh:
            manifest = json.load(fh)
        assert manifest["resumed_from"] == run_id
        assert manifest["stats"]["replayed"] == 2
        # Resuming the resume replays everything: the grid is complete.
        again = JobRunner(options(roots), execute=tracking_execute)
        state2 = load_run_state(resumed.last_run_id, roots["runs"])
        again.run(state2.jobs(), resume=state2)
        assert again.stats.replayed == 4 and again.stats.executed == 0

    def test_corrupt_cache_entry_forces_rerun(self, roots):
        jobs, run_id = interrupted_run(roots)
        state = load_run_state(run_id, roots["runs"])
        resumed = JobRunner(options(roots), execute=tracking_execute)
        # Rot cell a's cached result: the journal says finished, but the
        # journal is a skip-list hint, never a source of results.
        entry = resumed.cache.path_for(jobs[0].cache_key())
        flip_byte(str(entry))
        results = resumed.run(state.jobs(), resume=state)
        assert resumed.stats.replayed == 1  # only b
        assert resumed.stats.executed == 3
        assert resumed.cache.stats.corrupt == 1
        assert runs_count(roots["scratch"] / "a") == 2
        assert results[0]["runs"] == 2  # honest re-execution, no stale lie

    @pytest.mark.parametrize("jobs_opt", [1, 2])
    def test_attempt_carryover_bounds_retry_budget(self, roots, jobs_opt):
        job = scratch_job(roots["scratch"] / "flaky")
        original = JobRunner(options(roots, retries=2),
                             execute=always_transient)
        with pytest.raises(JobFailedError, match="after 3 attempt"):
            original.run([job])
        assert runs_count(roots["scratch"] / "flaky") == 3
        state = load_run_state(original.last_run_id, roots["runs"])
        assert state.attempts[job.cache_key()] == 2
        # The resume carries attempt counts: the budget spans both runs,
        # so only one more attempt happens — not three fresh ones.
        resumed = JobRunner(options(roots, retries=2, jobs=jobs_opt),
                            execute=always_transient)
        with pytest.raises(JobFailedError, match="after 3 attempt"):
            resumed.run(state.jobs(), resume=state)
        assert runs_count(roots["scratch"] / "flaky") == 4


class TestResumeCli:
    """End-to-end over the real simulator: ``harness resume <run_id>``."""

    def grid(self):
        return [SimJob.bar(benchmark="ora", machine=machine, label=label,
                           instructions=800, warmup=200, seed=0)
                for machine in ("inorder", "ooo")
                for label in ("N", "S10")]

    def test_resume_after_kill_is_digit_exact(self, roots, tmp_path,
                                              monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", roots["cache"])
        jobs = self.grid()
        full = JobRunner(options(roots, run_meta={"experiment": "grid"}))
        baseline = full.run(jobs)
        run_id = full.last_run_id

        # Forge the kill: keep the journal prefix up to the second
        # cell's finish, drop the victims' cache entries so the resume
        # has real work to do.
        journal = os.path.join(roots["runs"], run_id, "journal.jsonl")
        with open(journal) as fh:
            lines = fh.readlines()
        finishes = [i for i, line in enumerate(lines)
                    if '"rec":"job_finish"' in line]
        with open(journal, "w") as fh:
            fh.writelines(lines[:finishes[1] + 1])
        cache = full.cache
        for victim in jobs[2:]:
            os.unlink(cache.path_for(victim.cache_key()))

        exit_code = resume_main([run_id, "--runs-root", roots["runs"],
                                 "--quiet"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert f"resumed {run_id}: 2 cell(s) replayed" in out
        assert "2 re-executed, 0 failed" in out
        # Digit-exact: every cell's cached result now matches the
        # uninterrupted baseline.
        for job, expected in zip(jobs, baseline):
            assert cache.get(job) == expected

    def test_resume_respects_backend_flag(self, roots, monkeypatch,
                                          capsys):
        pytest.importorskip("numpy")
        from repro.vec import BACKEND_ENV

        # Restore-point trick (see test_vec_parity): the engine exports
        # the backend choice into os.environ; make monkeypatch unset it
        # again at teardown.
        monkeypatch.setenv(BACKEND_ENV, "interp")
        monkeypatch.delenv(BACKEND_ENV)
        monkeypatch.setenv("REPRO_CACHE_DIR", roots["cache"])
        jobs = self.grid()[:2]
        full = JobRunner(options(roots))
        baseline = full.run(jobs)
        run_id = full.last_run_id
        # Kill after the first finish; the second cell re-runs on vec.
        journal = os.path.join(roots["runs"], run_id, "journal.jsonl")
        with open(journal) as fh:
            lines = fh.readlines()
        finish = next(i for i, line in enumerate(lines)
                      if '"rec":"job_finish"' in line)
        with open(journal, "w") as fh:
            fh.writelines(lines[:finish + 1])
        os.unlink(full.cache.path_for(jobs[1].cache_key()))

        exit_code = resume_main([run_id, "--runs-root", roots["runs"],
                                 "--backend", "vec", "--quiet"])
        assert exit_code == 0
        assert "1 re-executed" in capsys.readouterr().out
        assert full.cache.get(jobs[1]) == baseline[1]  # digit-exact
