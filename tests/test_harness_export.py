"""Unit tests for result serialisation."""

import csv
import io
import json

import pytest

from repro.harness.coherence_exp import Figure4Result, Figure4Row, SensitivityPoint
from repro.harness.export import (
    figure4_to_json,
    figure_to_csv,
    figure_to_json,
    load_figure,
    sensitivity_to_csv,
)
from repro.harness.runner import BarResult, FigureResult


def sample_figure():
    result = FigureResult(name="sample")
    for label, cycles in (("N", 1000), ("S1", 1100)):
        result.bars.append(BarResult(
            benchmark="compress", machine="ooo", label=label, cycles=cycles,
            busy=0.3, cache_stall=0.5, other_stall=0.2,
            app_instructions=5000, handler_instructions=200,
            handler_invocations=100, l1_miss_rate=0.08))
    result.normalize()
    return result


class TestFigureJSON:
    def test_round_trip(self):
        original = sample_figure()
        restored = load_figure(figure_to_json(original))
        assert restored.name == original.name
        assert len(restored.bars) == 2
        for a, b in zip(original.bars, restored.bars):
            assert a.label == b.label
            assert a.cycles == b.cycles
            assert a.normalized == pytest.approx(b.normalized)

    def test_json_is_valid(self):
        data = json.loads(figure_to_json(sample_figure()))
        assert data["bars"][1]["normalized"] == pytest.approx(1.1)


class TestFigureCSV:
    def test_csv_parses(self):
        text = figure_to_csv(sample_figure())
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2
        assert rows[0]["benchmark"] == "compress"
        assert int(rows[1]["cycles"]) == 1100


class TestFigure4JSON:
    def test_serialises_means(self):
        result = Figure4Result(rows=[
            Figure4Row("read_mostly", 1000, 1.2, 1.1),
            Figure4Row("mixed", 900, 1.3, 1.2),
        ])
        data = json.loads(figure4_to_json(result))
        assert data["mean_reference_checking"] == pytest.approx(1.25)
        assert data["rows"][0]["workload"] == "read_mostly"


class TestSensitivityCSV:
    def test_serialises_points(self):
        points = [SensitivityPoint(900, 16384, 1.2, 1.1)]
        rows = list(csv.reader(io.StringIO(sensitivity_to_csv(points))))
        assert rows[0] == ["message_latency", "l1_size",
                           "reference_checking", "ecc"]
        assert rows[1][0] == "900"
