"""``harness spans``: tree reconstruction, critical path, self time,
anomalies, resolution, --check and the exports."""

import json

import pytest

from repro.harness.spans_cli import (
    analyze,
    build_tree,
    critical_path,
    find_anomalies,
    group_by_trace,
    percentile,
    run_checks,
    self_times,
    spans_main,
)

TRACE = "ab" * 16


def span(span_id, name, start, end, parent=None, pid=1, trace=TRACE,
         **attrs):
    record = {"schema": 1, "trace_id": trace, "span_id": span_id,
              "name": name, "start": start, "end": end, "status": "ok",
              "pid": pid}
    if parent:
        record["parent_id"] = parent
    if attrs:
        record["attrs"] = attrs
    return record


def write_spans(path, records):
    with open(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record) + "\n")
    return str(path)


def request_shaped_records():
    """A serve-shaped trace: http.request -> dispatch -> run -> jobs."""
    return [
        # Root's parent lives in the client process: never flushed here.
        span("r0", "http.request", 0.0, 10.0, parent="cccccccccccccccc"),
        span("p1", "request.parse", 0.1, 0.2, parent="r0"),
        span("d1", "dispatch", 0.5, 9.5, parent="r0"),
        span("e1", "run", 0.6, 9.4, parent="d1", pid=2),
        # two overlapping pool jobs: only the longer is critical
        span("j1", "job", 1.0, 5.0, parent="e1", pid=2, label="a",
             mode="pool"),
        span("j2", "job", 1.0, 9.0, parent="e1", pid=2, label="b",
             mode="pool"),
        span("s2", "sim.execute", 1.2, 8.8, parent="j2", pid=3,
             label="b"),
    ]


class TestTreeAndPath:
    def test_foreign_parent_makes_the_span_a_root(self):
        tree = build_tree(request_shaped_records())
        assert [r["span_id"] for r in tree["roots"]] == ["r0"]
        assert [k["span_id"] for k in tree["children"]["r0"]] == \
            ["p1", "d1"]

    def test_critical_path_telescopes_to_root_duration(self):
        tree = build_tree(request_shaped_records())
        path = critical_path(tree, tree["roots"][0])
        total = sum(hop["self"] for hop in path)
        assert total == pytest.approx(10.0)
        names = [hop["record"]["name"] for hop in path]
        # The fully-overlapped short job never makes it; the longer one
        # (and the pre-dispatch parse, which held its own window) do.
        assert names.count("job") == 1
        assert "request.parse" in names
        critical_job = [hop["record"] for hop in path
                        if hop["record"]["name"] == "job"]
        assert critical_job[0]["span_id"] == "j2"

    def test_deep_chain_attribution(self):
        records = [
            span("a", "outer", 0.0, 10.0),
            span("b", "mid", 1.0, 9.0, parent="a"),
            span("c", "inner", 2.0, 8.0, parent="b"),
        ]
        tree = build_tree(records)
        path = critical_path(tree, tree["roots"][0])
        contrib = {hop["record"]["name"]: hop["self"] for hop in path}
        assert contrib["outer"] == pytest.approx(2.0)
        assert contrib["mid"] == pytest.approx(2.0)
        assert contrib["inner"] == pytest.approx(6.0)

    def test_self_time_subtracts_children_interval_union(self):
        records = [
            span("a", "outer", 0.0, 10.0),
            # overlapping children: union is [1, 6], not 5 + 3
            span("b", "kid", 1.0, 5.0, parent="a"),
            span("c", "kid", 3.0, 6.0, parent="a"),
        ]
        table = self_times(build_tree(records))
        assert table["outer"]["self"] == pytest.approx(5.0)
        assert table["kid"]["total"] == pytest.approx(7.0)
        assert table["kid"]["count"] == 2


class TestAnomalies:
    def test_percentile_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)
        assert percentile([5.0], 0.99) == 5.0
        assert percentile([], 0.5) == 0.0

    def test_small_groups_are_never_flagged(self):
        records = [span(f"s{i}", "job", 0.0, 1.0 + i) for i in range(5)]
        assert find_anomalies(records) == []

    def test_outlier_beyond_p99_is_flagged(self):
        records = [span(f"s{i}", "job", 0.0, 0.010) for i in range(11)]
        records.append(span("slow", "job", 0.0, 5.0, label="worst"))
        flagged = find_anomalies(records)
        assert [f["span_id"] for f in flagged] == ["slow"]
        assert flagged[0]["label"] == "worst"
        assert flagged[0]["duration"] > flagged[0]["p99"]


class TestChecks:
    def test_connected_multi_process_trace_passes(self):
        analysis = analyze(request_shaped_records())
        analysis.pop("_tree")
        assert run_checks(analysis, expect_processes=3, wall=10.0,
                          tolerance=0.1) == []

    def test_disconnected_trace_fails(self):
        records = request_shaped_records()
        records.append(span("x9", "orphan", 0.0, 1.0,
                            parent="ffffffffffffffff"))
        analysis = analyze(records)
        analysis.pop("_tree")
        failures = run_checks(analysis, 1, None, 0.5)
        assert any("roots" in f for f in failures)

    def test_process_count_and_wall_violations(self):
        analysis = analyze(request_shaped_records())
        analysis.pop("_tree")
        failures = run_checks(analysis, expect_processes=4, wall=100.0,
                              tolerance=0.1)
        assert len(failures) == 2


class TestCli:
    def test_run_id_resolution_and_check(self, tmp_path, monkeypatch,
                                         capsys):
        from repro.exec import ExecOptions, JobRunner, SimJob

        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))
        runner = JobRunner(ExecOptions(
            cache=False, trace_sample=1.0,
            manifest_dir=str(tmp_path / "runs")))
        runner.run([SimJob.bar(benchmark="compress", machine="ooo",
                               label="S10", instructions=800, warmup=200,
                               seed=0)])
        run_id = json.loads(open(runner.last_manifest).read())["run_id"]
        assert spans_main([run_id, "--check"]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "manifest cross-check" in out
        assert "checks passed" in out

    def test_json_and_exports(self, tmp_path, capsys):
        path = write_spans(tmp_path / "spans.jsonl",
                           request_shaped_records())
        chrome = tmp_path / "chrome.json"
        otlp = tmp_path / "otlp.json"
        assert spans_main([path, "--json", "--chrome", str(chrome),
                           "--otlp", str(otlp)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trace_id"] == TRACE
        assert payload["spans"] == 7
        assert payload["connected"] is True
        assert payload["critical_path"]
        assert len(json.loads(chrome.read_text())["traceEvents"]) == 7
        assert json.loads(otlp.read_text())["resourceSpans"]

    def test_largest_trace_wins_and_trace_id_selects(self, tmp_path,
                                                     capsys):
        records = request_shaped_records()
        other = "cd" * 16
        records.append(span("z1", "http.request", 0.0, 1.0, trace=other))
        path = write_spans(tmp_path / "spans.jsonl", records)
        assert spans_main([path, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["trace_id"] == TRACE
        assert spans_main([path, "--json", "--trace-id", other]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trace_id"] == other
        assert payload["spans"] == 1

    def test_missing_input_exits_2(self, tmp_path, capsys):
        assert spans_main(["no-such-run"]) == 2
        assert "spans:" in capsys.readouterr().err
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert spans_main([str(empty)]) == 2

    def test_check_failure_exits_1(self, tmp_path, capsys):
        records = request_shaped_records()
        records.append(span("x9", "orphan", 0.0, 1.0,
                            parent="ffffffffffffffff"))
        path = write_spans(tmp_path / "spans.jsonl", records)
        assert spans_main([path, "--check"]) == 1
        assert "CHECK FAILED" in capsys.readouterr().err
