"""Scheduler behaviour: ordering, parallel equivalence, retries, timeout,
telemetry."""

import json
import time

import pytest

from repro.exec import (
    CollectingSink,
    ExecOptions,
    JobFailedError,
    JobRunner,
    JobTimeoutError,
    SimJob,
    TransientJobError,
)

# -- pluggable payloads (module-level: picklable by reference) ---------------


def echo_execute(job):
    return {"label": job.label, "seed": job.seed}


def flaky_execute(job):
    """Fail with a transient error until the shared counter reaches the
    threshold encoded in the job; cross-process state lives in a file
    whose path rides in the job's benchmark field."""
    counter_path, threshold = job.benchmark, job.seed
    try:
        with open(counter_path) as fh:
            count = int(fh.read() or "0")
    except FileNotFoundError:
        count = 0
    count += 1
    with open(counter_path, "w") as fh:
        fh.write(str(count))
    if count <= threshold:
        raise TransientJobError(f"flaky attempt {count}")
    return {"attempts": count}


def fatal_execute(job):
    raise ValueError("this payload is broken")


def slow_execute(job):
    time.sleep(job.seed)
    return {"slept": job.seed}


def make_job(name="a", seed=0):
    return SimJob.bar(benchmark=name, machine="m", label="L",
                      instructions=1, warmup=0, seed=seed)


def fast_options(**overrides):
    fields = dict(jobs=1, cache=False, backoff=0.01)
    fields.update(overrides)
    return ExecOptions(**fields)


# -- ordering and equivalence ------------------------------------------------


class TestOrdering:
    def test_results_in_job_order_serial(self):
        jobs = [make_job(name) for name in "abcde"]
        results = JobRunner(fast_options(), execute=echo_execute).run(jobs)
        assert [r["label"] for r in results] == [j.label for j in jobs]

    def test_results_in_job_order_parallel(self):
        jobs = [make_job(name) for name in "abcde"]
        results = JobRunner(fast_options(jobs=3),
                            execute=echo_execute).run(jobs)
        assert [r["label"] for r in results] == [j.label for j in jobs]


class TestParallelEquivalence:
    def test_small_figure_grid_identical(self):
        """jobs=4 must reproduce the serial grid bit-for-bit."""
        from repro.harness.export import figure_to_dict
        from repro.harness.runner import run_figure

        serial = run_figure(
            "equiv", ["ora"], ["ooo", "inorder"], ["N", "S10"], 2000, 500,
            engine=JobRunner(fast_options()))
        parallel = run_figure(
            "equiv", ["ora"], ["ooo", "inorder"], ["N", "S10"], 2000, 500,
            engine=JobRunner(fast_options(jobs=4)))
        assert figure_to_dict(serial) == figure_to_dict(parallel)


# -- retries -----------------------------------------------------------------


class TestRetries:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_transient_failure_retried_until_success(self, tmp_path, jobs):
        counter = tmp_path / "count"
        job = SimJob.bar(benchmark=str(counter), machine="m", label="L",
                         instructions=1, warmup=0, seed=2)  # fail twice
        trace = tmp_path / "trace.jsonl"
        runner = JobRunner(
            fast_options(jobs=jobs, retries=2, trace_path=str(trace)),
            execute=flaky_execute)
        results = runner.run([job])
        assert results[0] == {"attempts": 3}
        assert runner.stats.retries == 2
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        retried = [e for e in events if e["event"] == "retried"]
        assert len(retried) == 2
        assert all("flaky attempt" in e["error"] for e in retried)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_retry_budget_exhausted_fails_run(self, tmp_path, jobs):
        counter = tmp_path / "count"
        job = SimJob.bar(benchmark=str(counter), machine="m", label="L",
                         instructions=1, warmup=0, seed=99)  # never succeeds
        runner = JobRunner(fast_options(jobs=jobs, retries=1),
                           execute=flaky_execute)
        with pytest.raises(JobFailedError, match="failed after 2 attempt"):
            runner.run([job])
        assert runner.stats.failed == 1

    def test_non_transient_error_fails_immediately(self):
        runner = JobRunner(fast_options(retries=5), execute=fatal_execute)
        with pytest.raises(JobFailedError, match="this payload is broken"):
            runner.run([make_job()])
        assert runner.stats.retries == 0


# -- timeout -----------------------------------------------------------------


class TestTimeout:
    def test_parallel_timeout_aborts_with_clear_message(self):
        job = make_job(seed=30)  # would sleep 30s
        runner = JobRunner(fast_options(jobs=2, timeout=0.3),
                           execute=slow_execute)
        start = time.monotonic()
        with pytest.raises(JobTimeoutError, match="per-job timeout"):
            runner.run([job])
        assert time.monotonic() - start < 10  # aborted, not hung

    def test_serial_timeout_detected_post_hoc(self):
        job = make_job(seed=0.2)
        runner = JobRunner(fast_options(timeout=0.05),
                           execute=slow_execute)
        with pytest.raises(JobTimeoutError, match="serial mode"):
            runner.run([job])

    def test_fast_jobs_pass_under_timeout(self):
        runner = JobRunner(fast_options(jobs=2, timeout=30),
                           execute=echo_execute)
        assert len(runner.run([make_job("a"), make_job("b")])) == 2


# -- telemetry ---------------------------------------------------------------


class TestTelemetry:
    def test_event_sequence_per_job(self):
        sink = CollectingSink()
        runner = JobRunner(fast_options(), execute=echo_execute,
                           sinks=[sink])
        runner.run([make_job()])
        assert sink.names() == ["queued", "started", "finished"]
        finished = sink.events[-1]
        assert finished.cache == "off"
        assert finished.wall is not None and finished.wall >= 0

    def test_cache_hit_event_and_stats(self, tmp_path):
        sink = CollectingSink()
        options = fast_options(cache=True, cache_dir=str(tmp_path))
        JobRunner(options, execute=echo_execute).run([make_job()])
        warm = JobRunner(fast_options(cache=True, cache_dir=str(tmp_path)),
                         execute=echo_execute, sinks=[sink])
        warm.run([make_job()])
        assert sink.names() == ["queued", "cache_hit", "finished"]
        assert warm.stats.cache_hits == 1
        assert warm.stats.cache_hit_rate == 1.0

    def test_stats_accumulate_across_runs(self):
        runner = JobRunner(fast_options(), execute=echo_execute)
        runner.run([make_job("a")])
        runner.run([make_job("b")])
        assert runner.stats.jobs == 2
        assert runner.stats.finished == 2

    def test_summary_mentions_jobs_and_cache(self):
        runner = JobRunner(fast_options(), execute=echo_execute)
        runner.run([make_job()])
        summary = runner.stats.summary()
        assert "jobs" in summary and "cache" in summary and "wall" in summary

    def test_trace_jsonl_is_parseable(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        runner = JobRunner(fast_options(jobs=2, trace_path=str(trace)),
                           execute=echo_execute)
        runner.run([make_job("a"), make_job("b")])
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        header, events = events[0], events[1:]
        assert header["event"] == "run_header"
        assert {e["event"] for e in events} == {"queued", "started",
                                               "finished"}
        assert all(set(e) >= {"event", "key", "label", "timestamp"}
                   for e in events)

    def test_trace_stream_leads_with_schema_header(self, tmp_path):
        from repro.exec import TELEMETRY_SCHEMA

        trace = tmp_path / "t.jsonl"
        runner = JobRunner(
            fast_options(trace_path=str(trace),
                         run_meta={"experiment": "exp-x",
                                   "argv": ["exp-x", "--quick"],
                                   "seed": 7}),
            execute=echo_execute)
        runner.run([make_job("a"), make_job("b")])
        header = json.loads(trace.read_text().splitlines()[0])
        assert header["event"] == "run_header"
        assert header["schema"] == TELEMETRY_SCHEMA
        assert header["experiment"] == "exp-x"
        assert header["argv"] == ["exp-x", "--quick"]
        assert header["seed"] == 7
        assert header["jobs"] == 2
        assert header["workers"] == 1
        assert "git_sha" in header and "started" in header

    def test_trace_truncates_stale_file_then_appends_per_grid(
            self, tmp_path):
        """A new runner must not merge its stream into a stale trace
        file, but a multi-grid experiment (several run() calls through
        one runner) is one stream with one header per grid."""
        trace = tmp_path / "t.jsonl"
        trace.write_text('{"event": "queued", "key": "stale"}\n')
        runner = JobRunner(fast_options(trace_path=str(trace)),
                           execute=echo_execute)
        runner.run([make_job("a")])
        lines = [json.loads(line)
                 for line in trace.read_text().splitlines()]
        assert lines[0]["event"] == "run_header"
        assert all(e.get("key") != "stale" for e in lines)
        runner.run([make_job("b")])
        events = [json.loads(line)
                  for line in trace.read_text().splitlines()]
        headers = [e for e in events if e["event"] == "run_header"]
        assert len(headers) == 2
        labels = {e.get("label") for e in events if e["event"] == "finished"}
        assert labels == {"a/m/L", "b/m/L"}


class TestBench:
    def test_record_run_merges_entries(self, tmp_path):
        from repro.exec import record_run

        path = tmp_path / "BENCH.json"
        runner = JobRunner(fast_options(), execute=echo_execute)
        runner.run([make_job()])
        entry = record_run(path, "exp-a", runner)
        assert entry["jobs"] == 1 and entry["workers"] == 1
        record_run(path, "exp-b", runner)
        data = json.loads(path.read_text())
        assert set(data["experiments"]) == {"exp-a", "exp-b"}
        assert data["schema"] == 2

    def test_record_run_separates_cold_and_warm(self, tmp_path):
        """A cache-served run must not clobber the cold-run baseline."""
        from repro.exec import record_run

        path = tmp_path / "BENCH.json"
        cold_runner = JobRunner(fast_options(), execute=echo_execute)
        cold_runner.run([make_job()])
        cold_entry = record_run(path, "exp", cold_runner)
        assert cold_entry["temperature"] == "cold"

        warm_runner = JobRunner(fast_options(), execute=echo_execute)
        warm_runner.run([make_job()])
        warm_runner.stats.cache_hits = 1  # as a cache-served rerun reports
        warm_entry = record_run(path, "exp", warm_runner)
        assert warm_entry["temperature"] == "warm"

        data = json.loads(path.read_text())
        slot = data["experiments"]["exp"]
        assert set(slot) == {"cold", "warm"}
        assert slot["cold"]["cache_hits"] == 0
        assert slot["warm"]["cache_hits"] == 1

    def test_record_run_skips_rewrite_when_only_timestamp_moved(
            self, tmp_path, monkeypatch):
        """Identical stats must not churn the file (or bump `updated`)."""
        from repro.exec import record_run

        path = tmp_path / "BENCH.json"
        runner = JobRunner(fast_options(), execute=echo_execute)
        runner.run([make_job()])
        # Pin the volatile wall so consecutive records are value-identical.
        runner.stats.wall = 1.0
        runner.stats.job_walls = [1.0]
        record_run(path, "exp", runner)
        first = path.read_text()
        updated = json.loads(first)["updated"]
        record_run(path, "exp", runner)
        assert path.read_text() == first
        assert json.loads(path.read_text())["updated"] == updated

    def test_record_run_appends_trajectory_lines(self, tmp_path):
        from repro.exec import record_run
        from repro.perf import read_trajectory, trajectory_path_for

        path = tmp_path / "BENCH.json"
        runner = JobRunner(fast_options(), execute=echo_execute)
        runner.run([make_job()])
        record_run(path, "exp", runner)
        record_run(path, "exp", runner)
        history = read_trajectory(trajectory_path_for(path))
        assert len(history) == 2
        assert all(r["experiment"] == "exp" for r in history)
        assert all(r["schema"] == 1 for r in history)
        assert history[0]["wall_seconds"] == history[1]["wall_seconds"]

    def test_record_run_write_is_atomic(self, tmp_path):
        """No tmp droppings, and the target parses, after a record."""
        from repro.exec import record_run

        path = tmp_path / "BENCH.json"
        runner = JobRunner(fast_options(), execute=echo_execute)
        runner.run([make_job()])
        record_run(path, "exp", runner)
        leftovers = [p.name for p in tmp_path.iterdir()
                     if p.name.endswith(".tmp")]
        assert leftovers == []
        assert json.loads(path.read_text())["schema"] == 2
