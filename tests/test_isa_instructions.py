"""Unit tests for the dynamic-instruction records and op classes."""

import pytest

from repro.isa import (
    DynInst,
    OpClass,
    FUKind,
    FU_FOR_OP,
    alu,
    branch,
    fp_op,
    is_mem_op,
    load,
    mhar_set,
    mhrr_jump,
    nop,
    prefetch,
    store,
)
from repro.isa.opclass import is_ctrl_op


class TestOpClass:
    def test_every_op_has_a_functional_unit(self):
        for op in OpClass:
            assert op in FU_FOR_OP

    def test_memory_ops(self):
        assert is_mem_op(OpClass.LOAD)
        assert is_mem_op(OpClass.STORE)
        assert is_mem_op(OpClass.PREFETCH)
        assert not is_mem_op(OpClass.IALU)
        assert not is_mem_op(OpClass.BRANCH)

    def test_control_ops(self):
        assert is_ctrl_op(OpClass.BRANCH)
        assert is_ctrl_op(OpClass.JUMP)
        assert is_ctrl_op(OpClass.MHRR_JUMP)
        assert is_ctrl_op(OpClass.BLMISS)
        assert not is_ctrl_op(OpClass.LOAD)

    def test_memory_ops_use_memory_unit(self):
        assert FU_FOR_OP[OpClass.LOAD] is FUKind.MEMORY
        assert FU_FOR_OP[OpClass.STORE] is FUKind.MEMORY

    def test_nop_uses_no_unit(self):
        assert FU_FOR_OP[OpClass.NOP] is FUKind.NONE


class TestDynInst:
    def test_load_requires_address(self):
        with pytest.raises(ValueError):
            DynInst(OpClass.LOAD, dest=1)

    def test_branch_requires_outcome(self):
        with pytest.raises(ValueError):
            DynInst(OpClass.BRANCH)

    def test_load_constructor(self):
        inst = load(0x100, dest=3, srcs=(4,), pc=0x40)
        assert inst.op is OpClass.LOAD
        assert inst.addr == 0x100
        assert inst.dest == 3
        assert inst.srcs == (4,)
        assert inst.pc == 0x40
        assert inst.informing
        assert inst.is_mem
        assert not inst.is_store

    def test_store_constructor(self):
        inst = store(0x200, srcs=(5,), informing=False)
        assert inst.is_store
        assert inst.is_mem
        assert not inst.informing
        assert inst.dest is None

    def test_prefetch_never_informs(self):
        assert not prefetch(0x300).informing

    def test_branch_constructor(self):
        inst = branch(True, srcs=(1, 2))
        assert inst.taken is True
        assert not inst.is_mem

    def test_alu_and_fp(self):
        a = alu(2, (1,))
        assert a.op is OpClass.IALU
        f = fp_op(40, (33, 34), op=OpClass.FDIV)
        assert f.op is OpClass.FDIV

    def test_handler_markers(self):
        assert mhrr_jump().handler_code
        assert not mhar_set().handler_code
        assert nop().op is OpClass.NOP

    def test_repr_is_stable(self):
        text = repr(load(0x10, dest=1, pc=0x4))
        assert "LOAD" in text and "a=0x10" in text
