"""Shared fixtures: keep test runs from writing into the repo tree."""

import pytest


@pytest.fixture(autouse=True)
def _isolated_runs_dir(tmp_path, monkeypatch):
    """Route default run-manifest writes (repro.perf) into the test's
    tmp dir — CLI invocations would otherwise land in results/runs/."""
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs-default"))
