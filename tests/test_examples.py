"""Smoke tests: the example scripts import cleanly and the fast ones run."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


ALL_EXAMPLES = [p.stem for p in sorted(EXAMPLES.glob("*.py"))]


def test_example_set_is_complete():
    assert set(ALL_EXAMPLES) >= {
        "quickstart", "miss_profiling", "adaptive_prefetching",
        "multithreading", "coherence_access_control", "page_recoloring"}


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_imports(name):
    module = load_example(name)
    assert hasattr(module, "main")


def test_quickstart_runs(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "misses seen by handler" in out


def test_page_recoloring_runs(capsys):
    load_example("page_recoloring").main()
    out = capsys.readouterr().out
    assert "speedup" in out
