"""Unit tests for the monitoring clients (§4.1.1)."""

import pytest

from repro.apps import MissCounter, MissProfiler
from repro.isa import load, store
from tests.helpers import make_inorder, make_ooo


def strided_loads(n, base=0x40000, stride=64, pc=0x1000):
    return [load(base + stride * i, dest=2, pc=pc + 4 * (i % 4))
            for i in range(n)]


class TestMissCounter:
    def test_counts_match_engine(self):
        counter = MissCounter()
        core = make_ooo(informing=counter.informing_config())
        core.run(strided_loads(40))
        assert counter.misses == core.engine.invocations
        assert counter.misses >= 40  # every line distinct

    def test_by_pc_partition(self):
        counter = MissCounter()
        core = make_ooo(informing=counter.informing_config())
        core.run(strided_loads(40))
        assert sum(counter.by_pc.values()) == counter.misses
        assert len(counter.by_pc) == 4  # four static pcs in the trace

    def test_counter_on_inorder(self):
        counter = MissCounter()
        core = make_inorder(informing=counter.informing_config())
        core.run(strided_loads(20))
        assert counter.misses >= 20

    def test_no_misses_no_counts(self):
        counter = MissCounter()
        core = make_ooo(informing=counter.informing_config())
        trace = [load(0x100, dest=2, pc=0x1000)]
        # Prime, then all hits.
        core.run(trace + [load(0x100, dest=2, pc=0x2000 + 4 * i)
                          for i in range(200)])
        assert counter.misses == 1


class TestMissProfiler:
    def test_profile_counts_misses_and_references(self):
        profiler = MissProfiler()
        core = make_ooo(informing=profiler.informing_config())
        trace = strided_loads(64)
        core.run(profiler.counting_stream(iter(trace)))
        profile = profiler.profile
        assert profile.total_misses == 64
        assert sum(profile.references.values()) == 64
        # Four static references, each executed 16 times, all missing.
        for pc in profile.references:
            assert profile.miss_rate(pc) == pytest.approx(1.0)

    def test_hottest_ranking(self):
        profiler = MissProfiler()
        core = make_ooo(informing=profiler.informing_config())
        # pc 0x1000 misses constantly; pc 0x2000 always hits after priming.
        trace = []
        for i in range(30):
            trace.append(load(0x80000 + 64 * i, dest=2, pc=0x1000))
            trace.append(load(0x100, dest=3, pc=0x2000))
        core.run(profiler.counting_stream(iter(trace)))
        hottest = profiler.profile.hottest(1)
        assert hottest[0][0] == 0x1000
        assert profiler.profile.miss_rate(0x2000) < 0.2

    def test_handler_cost_charged(self):
        profiler = MissProfiler()
        core = make_ooo(informing=profiler.informing_config())
        stats = core.run(profiler.counting_stream(iter(strided_loads(32))))
        # ~10-instruction handler + return jump per miss.
        assert stats.handler_instructions >= 32 * 11

    def test_collisions_detected(self):
        profiler = MissProfiler(table_size=2)
        core = make_ooo(informing=profiler.informing_config())
        # Static pcs that alias in a 2-entry table.
        trace = []
        for i in range(16):
            trace.append(load(0x80000 + 64 * i, dest=2, pc=0x1000))
            trace.append(load(0xA0000 + 64 * i, dest=3, pc=0x1008))
        core.run(profiler.counting_stream(iter(trace)))
        assert profiler.profile.hash_collisions > 0

    def test_bad_table_size(self):
        with pytest.raises(ValueError):
            MissProfiler(table_size=3)

    def test_stores_profiled_too(self):
        profiler = MissProfiler()
        core = make_ooo(informing=profiler.informing_config())
        trace = [store(0x90000 + 64 * i, pc=0x3000) for i in range(10)]
        core.run(profiler.counting_stream(iter(trace)))
        assert profiler.profile.references[0x3000] == 10
        assert profiler.profile.misses[0x3000] == 10
