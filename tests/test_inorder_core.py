"""Unit tests for the in-order (21164-like) core."""

import pytest

from repro.core import add_cc_checks, add_mhar_sets
from repro.isa import alu, branch, load, store
from tests.helpers import cc_config, make_inorder, small_hierarchy, trap_config


def independent_alus(n, pc_base=0x1000):
    return [alu(dest=1 + (i % 8), pc=pc_base + 4 * i) for i in range(n)]


def chained_alus(n, pc_base=0x1000):
    return [alu(dest=1, srcs=(1,), pc=pc_base + 4 * i) for i in range(n)]


class TestBasicTiming:
    def test_independent_alu_ipc_limited_by_int_units(self):
        core = make_inorder()
        stats = core.run(independent_alus(400))
        assert stats.app_instructions == 400
        # Two integer units cap the machine at IPC 2.
        assert 1.7 < stats.ipc <= 2.0

    def test_chained_alus_serialize(self):
        core = make_inorder()
        stats = core.run(chained_alus(200))
        assert stats.ipc == pytest.approx(1.0, abs=0.1)

    def test_load_hit_latency_stalls_dependent(self):
        # load -> dependent alu chains: each pair costs ~hit latency.
        trace = []
        for i in range(100):
            trace.append(load(0x100, dest=2, pc=0x1000 + 8 * i))
            trace.append(alu(dest=3, srcs=(2,), pc=0x1004 + 8 * i))
        core = make_inorder()
        stats = core.run(trace)
        # Roughly 2 cycles per pair once warm (load-use latency dominates).
        assert stats.cycles >= 190

    def test_load_miss_charges_cache_stall(self):
        # Strided misses with immediate use: the oldest instruction waits
        # on memory most of the time.
        trace = []
        for i in range(50):
            trace.append(load(0x10000 + 64 * i, dest=2, pc=0x1000 + 8 * i))
            trace.append(alu(dest=3, srcs=(2,), pc=0x1004 + 8 * i))
        core = make_inorder()
        stats = core.run(trace)
        assert stats.cache_stall_slots > stats.total_slots * 0.3
        assert core.hierarchy.stats.l1_misses == 50

    def test_mispredicted_branches_cost_cycles(self):
        import random
        rng = random.Random(7)
        outcomes = [rng.random() < 0.5 for _ in range(200)]
        trace_random = [branch(t, pc=0x1000 + 4 * i)
                        for i, t in enumerate(outcomes)]
        trace_steady = [branch(False, pc=0x1000 + 4 * i) for i in range(200)]
        random_stats = make_inorder().run(trace_random)
        steady_stats = make_inorder().run(trace_steady)
        assert random_stats.cycles > steady_stats.cycles
        assert random_stats.branch_mispredicts > 50

    def test_store_does_not_stall_commit(self):
        trace = [store(0x20000 + 64 * i, pc=0x1000 + 4 * i) for i in range(8)]
        trace += independent_alus(40, pc_base=0x2000)
        core = make_inorder()
        stats = core.run(trace)
        # Store misses retire into the write buffer; ALU work proceeds.
        assert stats.cycles < 100

    def test_max_app_insts_bounds_run(self):
        core = make_inorder()
        stats = core.run(iter(independent_alus(10_000)), max_app_insts=100)
        assert stats.app_instructions == 100

    def test_empty_stream(self):
        stats = make_inorder().run([])
        assert stats.app_instructions == 0
        assert stats.cycles >= 1


class TestInformingTrap:
    def miss_heavy_trace(self, n=40):
        # Every load touches a new line: all misses.
        return [load(0x40000 + 64 * i, dest=2, pc=0x1000 + 4 * i)
                for i in range(n)]

    def hit_heavy_trace(self, n=40):
        return [load(0x100, dest=2, pc=0x1000 + 4 * i) for i in range(n)]

    def test_handler_runs_per_miss(self):
        core = make_inorder(informing=trap_config(n=1))
        stats = core.run(self.miss_heavy_trace(20))
        assert core.engine.invocations == 20
        assert stats.handler_invocations == 20
        # 1 chained ALU + MHRR jump per invocation.
        assert stats.handler_instructions == 40

    def test_no_handler_on_hits(self):
        core = make_inorder(informing=trap_config(n=1))
        # Each load feeds a dependent divide, spacing references far enough
        # apart that everything after the cold miss is a genuine hit.
        from repro.isa import OpClass
        from repro.isa.instructions import DynInst
        trace = []
        for i in range(40):
            trace.append(load(0x100, dest=2, pc=0x1000 + 8 * i))
            trace.append(DynInst(OpClass.IDIV, dest=3, srcs=(2,),
                                 pc=0x1004 + 8 * i))
        stats = core.run(trace)
        # One line fetch -> one handler invocation, hits are free.
        assert core.engine.invocations == 1
        assert core.hierarchy.stats.l1_hits == 39
        assert stats.app_instructions == 80

    def test_one_invocation_per_line_fetch(self):
        # Back-to-back references to one missing line: they merge with the
        # single line fetch and the handler runs exactly once for it.
        core = make_inorder(informing=trap_config(n=1))
        trace = self.hit_heavy_trace(40)
        stats = core.run(trace)
        assert core.engine.invocations == 1
        assert core.hierarchy.stats.l1_misses == 1
        assert stats.app_instructions == 40

    def test_trap_overhead_increases_cycles(self):
        trace = self.miss_heavy_trace(40)
        base = make_inorder().run(list(trace))
        informed = make_inorder(informing=trap_config(n=10)).run(list(trace))
        assert informed.cycles > base.cycles

    def test_app_work_preserved_under_traps(self):
        trace = self.miss_heavy_trace(30) + independent_alus(50, 0x9000)
        base = make_inorder().run(list(trace))
        informed = make_inorder(informing=trap_config(n=10)).run(list(trace))
        assert informed.app_instructions == base.app_instructions == 80

    def test_observer_sees_missing_references(self):
        seen = []
        core = make_inorder(informing=trap_config(n=1),
                            observer=lambda ref: seen.append(ref.addr))
        core.run(self.miss_heavy_trace(10))
        assert len(seen) == 10
        assert seen[0] == 0x40000

    def test_unique_handler_mode_adds_mhar_sets(self):
        trace = self.hit_heavy_trace(50)
        informing = trap_config(n=1, unique=True)
        core = make_inorder(informing=informing)
        stats = core.run(add_mhar_sets(iter(trace)))
        # One MHAR_SET per reference counts as overhead, not app work.
        assert stats.app_instructions == 50
        assert stats.handler_instructions >= 50

    def test_handler_overlaps_miss_latency(self):
        """Handler work executes under the outstanding miss."""
        trace = self.miss_heavy_trace(20)
        short = make_inorder(informing=trap_config(n=1)).run(list(trace))
        longer = make_inorder(informing=trap_config(n=10)).run(list(trace))
        # A 10-instruction handler costs far less than 9 extra cycles per
        # miss because it overlaps the ~75-cycle memory latency.
        assert longer.cycles - short.cycles < 20 * 9


class TestConditionCode:
    def test_blmiss_fires_handler_on_miss(self):
        trace = [load(0x40000 + 64 * i, dest=2, pc=0x1000 + 8 * i)
                 for i in range(15)]
        core = make_inorder(informing=cc_config(n=1))
        stats = core.run(add_cc_checks(iter(trace)))
        assert core.engine.invocations == 15
        assert stats.app_instructions == 15

    def test_blmiss_overhead_on_hits(self):
        trace = [load(0x100, dest=2, pc=0x1000 + 8 * i) for i in range(60)]
        base = make_inorder().run(list(trace))
        core = make_inorder(informing=cc_config(n=1))
        checked = core.run(add_cc_checks(iter(trace)))
        # The check instruction consumes fetch/issue slots even on hits...
        assert checked.cycles > base.cycles
        # ...but costs at most about one instruction per reference.
        assert checked.cycles < base.cycles * 2.5
        # Only the cold miss and its merged replays invoke the handler.
        assert core.engine.invocations <= 12


class TestReplaySemantics:
    def test_squashed_instructions_commit_exactly_once(self):
        # Interleave misses with ALU work; replay must not double-commit.
        trace = []
        for i in range(20):
            trace.append(load(0x50000 + 64 * i, dest=2, pc=0x1000 + 12 * i))
            trace.append(alu(dest=3, srcs=(2,), pc=0x1004 + 12 * i))
            trace.append(alu(dest=4, pc=0x1008 + 12 * i))
        core = make_inorder(informing=trap_config(n=2))
        stats = core.run(list(trace))
        assert stats.app_instructions == 60

    def test_mshr_released_on_commit_with_extended_lifetime(self):
        hierarchy = small_hierarchy(extended=True)
        trace = [load(0x60000 + 64 * i, dest=2, pc=0x1000 + 4 * i)
                 for i in range(30)]
        core = make_inorder(hierarchy=hierarchy)
        core.run(trace)
        assert hierarchy.mshrs.occupancy() == 0
        assert hierarchy.mshrs.high_water <= 8
