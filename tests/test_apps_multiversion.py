"""Unit tests for multi-version code selection (§4.1.2)."""

import itertools

import pytest

from repro.apps import AdaptiveVersionSelector
from repro.isa import OpClass, alu, load
from tests.helpers import make_ooo


def phased_workload(phases=6, phase_len=2400):
    """Alternating cache-friendly and streaming phases."""
    for phase in range(phases):
        streaming = phase % 2 == 1
        for i in range(phase_len // 2):
            if streaming:
                addr = 0x400000 + 0x40000 * phase + 64 * i
            else:
                addr = 0x1000 + 4 * (i % 64)
            yield load(addr, dest=2, pc=0x100)
            yield alu(dest=3, srcs=(2,), pc=0x104)


class TestAdaptiveVersionSelector:
    def test_switches_to_prefetch_under_misses(self):
        selector = AdaptiveVersionSelector(
            phased_workload(), prefetch_pcs={0x100}, window=1200,
            miss_threshold=0.05)
        core = make_ooo(informing=selector.informing_config())
        core.run(selector.stream())
        assert selector.prefetch_windows > 0
        assert "plain" in selector.choices  # friendly phases stay plain

    def test_never_switches_on_resident_workload(self):
        resident = (load(0x1000 + 4 * (i % 32), dest=2, pc=0x100)
                    for i in range(8000))
        selector = AdaptiveVersionSelector(resident, {0x100}, window=1000,
                                           miss_threshold=0.02)
        core = make_ooo(informing=selector.informing_config())
        core.run(selector.stream())
        assert selector.prefetch_windows <= 1  # cold window at most

    def test_prefetch_version_contains_prefetches(self):
        streaming = (load(0x600000 + 64 * i, dest=2, pc=0x100)
                     for i in range(6000))
        selector = AdaptiveVersionSelector(streaming, {0x100}, window=500,
                                           miss_threshold=0.01)
        core = make_ooo(informing=selector.informing_config())
        core.run(selector.stream())
        # All-miss stream: after the first window everything is prefetch.
        assert selector.choices[0] == "plain"
        assert all(c == "prefetch" for c in selector.choices[2:])

    def test_work_is_preserved(self):
        trace = list(itertools.islice(phased_workload(), 6000))
        base = make_ooo().run(iter(list(trace)))
        selector = AdaptiveVersionSelector(iter(list(trace)), {0x100},
                                           window=1000)
        core = make_ooo(informing=selector.informing_config())
        adapted = core.run(selector.stream())
        assert adapted.app_instructions == base.app_instructions

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveVersionSelector(iter([]), set(), window=5)
        with pytest.raises(ValueError):
            AdaptiveVersionSelector(iter([]), set(), miss_threshold=0.0)
