"""The on-disk content-addressed result cache."""

import json
import os

import pytest

from repro.exec import ExecOptions, JobRunner, ResultCache, SimJob
from repro.exec.cache import default_cache_dir, parse_size


@pytest.fixture
def store(tmp_path):
    return ResultCache(tmp_path / "cache")


def job(**overrides):
    fields = dict(benchmark="ora", machine="inorder", label="N",
                  instructions=2000, warmup=500, seed=0)
    fields.update(overrides)
    return SimJob.bar(**fields)


class TestStore:
    def test_roundtrip(self, store):
        result = {"cycles": 123, "benchmark": "ora"}
        store.put(job(), result)
        assert store.get(job()) == result
        assert store.stats.hits == 1 and store.stats.stores == 1

    def test_miss_on_empty(self, store):
        assert store.get(job()) is None
        assert store.stats.misses == 1

    def test_different_job_misses(self, store):
        store.put(job(), {"cycles": 1})
        assert store.get(job(seed=5)) is None

    def test_entry_is_self_describing(self, store):
        path = store.put(job(), {"cycles": 9})
        blob = json.loads(path.read_text())
        assert blob["job"]["benchmark"] == "ora"
        assert blob["key"] == job().cache_key()
        assert blob["result"] == {"cycles": 9}

    def test_stale_schema_invalidated(self, store):
        path = store.put(job(), {"cycles": 1})
        blob = json.loads(path.read_text())
        blob["schema"] = -1
        path.write_text(json.dumps(blob))
        assert store.get(job()) is None
        assert store.stats.invalidations == 1
        assert not path.exists()

    def test_corrupt_entry_quarantined(self, store):
        path = store.put(job(), {"cycles": 1})
        path.write_text("{not json")
        assert store.get(job()) is None
        assert store.stats.corrupt == 1
        assert not path.exists()  # moved out of the addressable tree
        assert store.quarantine_count() == 1

    def test_purge_and_counts(self, store):
        store.put(job(), {"cycles": 1})
        store.put(job(seed=1), {"cycles": 2})
        assert store.entry_count() == 2
        assert store.size_bytes() > 0
        assert store.purge() == 2
        assert store.entry_count() == 0

    def test_env_var_controls_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
        assert default_cache_dir() == tmp_path / "alt"
        assert ResultCache().root == tmp_path / "alt"


class TestUnwritableRoot:
    """Storing is best-effort: a broken cache root degrades to skipped
    stores, never to a dead run."""

    @pytest.fixture
    def broken_store(self, tmp_path):
        # A regular file as the cache root: mkdir under it raises an
        # OSError subclass even for root (chmod-based tricks don't).
        root = tmp_path / "not-a-dir"
        root.write_text("occupied")
        return ResultCache(root)

    def test_put_degrades_to_skipped_store(self, broken_store):
        with pytest.warns(RuntimeWarning, match="not writable"):
            assert broken_store.put(job(), {"cycles": 1}) is None
        assert broken_store.stats.store_failures == 1
        assert broken_store.stats.stores == 0

    def test_warns_once_per_instance(self, broken_store):
        with pytest.warns(RuntimeWarning):
            broken_store.put(job(), {"cycles": 1})
        import warnings as warnings_module
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            broken_store.put(job(seed=1), {"cycles": 2})  # silent now
        assert broken_store.stats.store_failures == 2

    def test_replace_failure_also_degrades(self, store, monkeypatch):
        import os

        def broken_replace(src, dst):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(os, "replace", broken_replace)
        with pytest.warns(RuntimeWarning, match="No space left"):
            assert store.put(job(), {"cycles": 1}) is None
        assert store.stats.store_failures == 1
        # The temp file is cleaned up, not left to read as garbage.
        assert store.entry_count() == 0
        assert not list(store.root.rglob("*.tmp.*"))

    def test_grid_completes_despite_store_failures(self, tmp_path):
        root = tmp_path / "not-a-dir"
        root.write_text("occupied")
        runner = JobRunner(ExecOptions(jobs=1, cache=True,
                                       cache_dir=str(root)))
        with pytest.warns(RuntimeWarning):
            results = runner.run([job(), job(label="S10")])
        assert len(results) == 2
        assert all(r is not None for r in results)
        assert runner.cache.stats.store_failures == 2
        assert runner.stats.finished == 2
        assert runner.cache.stats.as_dict()["store_failures"] == 2


class TestIntegrity:
    """Content checksums: bit rot is caught on read, quarantined, and
    repairable from the CLI — never a traceback, never a wrong result."""

    def test_entries_carry_crc(self, store):
        from repro.exec.cache import blob_crc

        path = store.put(job(), {"cycles": 7})
        blob = json.loads(path.read_text())
        assert blob["crc"] == blob_crc(blob)

    def test_bit_flip_detected_and_quarantined(self, store):
        from repro.sanitize.chaos import flip_byte

        path = store.put(job(), {"cycles": 7})
        # Flip a byte inside the result payload, not the framing.
        offset = path.read_text().index("7")
        flip_byte(str(path), offset=offset)
        assert store.get(job()) is None  # no wrong answer served
        assert store.stats.corrupt == 1
        assert store.stats.hits == 0
        quarantined = list((store.root / "quarantine").iterdir())
        assert len(quarantined) == 1

    def test_pre_checksum_blob_is_stale_not_corrupt(self, store):
        path = store.put(job(), {"cycles": 1})
        blob = json.loads(path.read_text())
        del blob["crc"]  # entry written before checksums existed
        path.write_text(json.dumps(blob))
        assert store.get(job()) is None
        assert store.stats.invalidations == 1
        assert store.stats.corrupt == 0

    def test_read_error_counted_file_left_alone(self, store, monkeypatch):
        path = store.put(job(), {"cycles": 1})

        def broken_read_bytes(self, *a, **kw):
            raise OSError(5, "Input/output error")

        monkeypatch.setattr(type(path), "read_bytes", broken_read_bytes)
        assert store.get(job()) is None
        assert store.stats.read_errors == 1
        monkeypatch.undo()
        assert path.exists()  # transient I/O error: entry not destroyed

    def test_verify_reports_and_repair_quarantines(self, store):
        from repro.sanitize.chaos import flip_byte

        good = store.put(job(seed=1), {"cycles": 1})
        bad = store.put(job(seed=2), {"cycles": 2})
        flip_byte(str(bad))
        summary = store.verify()
        assert summary["checked"] == 2
        assert summary["ok"] == 1
        assert summary["corrupt"] == 1
        assert not summary["repair"]
        assert bad.exists()  # verify alone is read-only

        summary = store.verify(repair=True)
        assert summary["corrupt"] == 1 and summary["quarantined"] == 1
        assert not bad.exists() and good.exists()
        # A second pass is clean.
        assert store.verify()["corrupt"] == 0

    def test_verify_cli_exit_codes(self, store, capsys):
        from repro.exec.cli import main as cache_cli
        from repro.sanitize.chaos import flip_byte

        path = store.put(job(), {"cycles": 1})
        argv = ["cache", "verify", "--dir", str(store.root)]
        assert cache_cli(argv) == 0
        flip_byte(str(path))
        assert cache_cli(argv) == 1  # unrepaired corruption
        argv[1] = "repair"
        assert cache_cli(argv) == 0  # repaired: quarantined, exit clean
        capsys.readouterr()

    def test_sweep_tmp_age_guard(self, store):
        path = store.put(job(), {"cycles": 1})
        fresh = path.parent / "deadbeef.tmp.123"
        stale = path.parent / "cafebabe.tmp.456"
        fresh.write_text("half-written")
        stale.write_text("half-written")
        old = stale.stat().st_mtime - 7200
        os.utime(stale, (old, old))
        assert store.sweep_tmp() == 1
        assert fresh.exists() and not stale.exists()
        assert path.exists()

    def test_prune_sweeps_stale_tmp(self, store):
        path = store.put(job(), {"cycles": 1})
        leftover = path.parent / "0badf00d.tmp.789"
        leftover.write_text("half-written")
        old = leftover.stat().st_mtime - 7200
        os.utime(leftover, (old, old))
        summary = store.prune(max_bytes=10 ** 9)
        assert summary["tmp_swept"] == 1
        assert not leftover.exists()


class TestParseSize:
    @pytest.mark.parametrize("text,expected", [
        ("0", 0), ("123", 123), ("1K", 1024), ("2k", 2048),
        ("3M", 3 * 1024 ** 2), ("1G", 1024 ** 3), (" 10M ", 10 * 1024 ** 2),
    ])
    def test_accepts_suffixes(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("text", ["", "junk", "1.5M", "-3", "K"])
    def test_rejects_garbage(self, text):
        with pytest.raises(ValueError):
            parse_size(text)


class TestPrune:
    def _age(self, path, seconds):
        stamp = path.stat().st_mtime - seconds
        os.utime(path, (stamp, stamp))

    def test_evicts_oldest_first(self, store):
        oldest = store.put(job(seed=1), {"cycles": 1})
        middle = store.put(job(seed=2), {"cycles": 2})
        newest = store.put(job(seed=3), {"cycles": 3})
        self._age(oldest, 300)
        self._age(middle, 200)
        self._age(newest, 100)
        keep = newest.stat().st_size
        summary = store.prune(max_bytes=keep)
        assert summary["removed"] == 2
        assert not oldest.exists() and not middle.exists()
        assert newest.exists()
        assert summary["remaining_entries"] == 1
        assert summary["remaining_bytes"] <= keep
        assert store.stats.evictions == 2

    def test_noop_under_cap(self, store):
        store.put(job(), {"cycles": 1})
        summary = store.prune(max_bytes=10 ** 9)
        assert summary["removed"] == 0
        assert summary["freed_bytes"] == 0
        assert store.entry_count() == 1
        assert store.stats.evictions == 0

    def test_cap_enforced_during_puts(self, tmp_path, monkeypatch):
        from repro.exec import cache as cache_module
        monkeypatch.setattr(cache_module, "PRUNE_INTERVAL", 1)
        one_entry = ResultCache(tmp_path / "probe")
        size = one_entry.put(job(), {"cycles": 0}).stat().st_size

        capped = ResultCache(tmp_path / "cache", max_bytes=2 * size + 1)
        for seed in range(6):
            capped.put(job(seed=seed), {"cycles": seed})
        assert capped.entry_count() <= 2
        assert capped.size_bytes() <= 2 * size + 1
        assert capped.stats.evictions >= 4

    def test_env_var_sets_cap(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "2K")
        assert ResultCache(tmp_path / "c").max_bytes == 2048

    def test_unparseable_env_var_warns_and_disables(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "lots")
        with pytest.warns(RuntimeWarning, match="REPRO_CACHE_MAX_BYTES"):
            assert ResultCache(tmp_path / "c").max_bytes is None

    def test_explicit_cap_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "1K")
        assert ResultCache(tmp_path / "c", max_bytes=99).max_bytes == 99


class TestCacheThroughEngine:
    def test_hit_equals_fresh_run(self, tmp_path):
        """A cached result is exactly what a fresh simulation produces."""
        jobs = [job(), job(label="S10")]
        cold = JobRunner(ExecOptions(jobs=1, cache=True,
                                     cache_dir=str(tmp_path)))
        first = cold.run(jobs)
        assert cold.cache.stats.stores == 2

        warm = JobRunner(ExecOptions(jobs=1, cache=True,
                                     cache_dir=str(tmp_path)))
        second = warm.run(jobs)
        assert warm.stats.cache_hits == 2
        assert warm.stats.executed == 0

        fresh = JobRunner(ExecOptions(jobs=1, cache=False)).run(jobs)
        assert first == second == fresh

    def test_no_cache_option_never_touches_disk(self, tmp_path):
        runner = JobRunner(ExecOptions(jobs=1, cache=False,
                                       cache_dir=str(tmp_path)))
        runner.run([job()])
        assert runner.cache is None
        assert not any(tmp_path.iterdir())
