"""The two-backend contract: vec is digit-exact with interp, and invisible
to the cache.

Three layers of proof:

* a hypothesis differential sweep — random (benchmark, machine, label,
  run sizes, workload seed) cells run through both backends must agree
  on **every** exported :class:`BarResult` field, including the full
  MemStats-derived breakdown (the golden-parity suite pins the figure2
  grid; this sweeps the config space around it, including the E/CC
  label families the golden capture never exercises);
* cache-key invariance — a job's content address must not change with
  the backend (``REPRO_BACKEND``, ``ExecOptions.backend``, or a serve
  spec's ``backend`` field), because either backend may populate or hit
  the shared result cache;
* dispatch rules — explicit argument beats environment, unknown names
  raise :class:`BackendError`, and unsupported bars (Python callback
  handlers, sanitizer/observer attached) silently use interp.
"""

import os
from dataclasses import fields

import pytest

pytest.importorskip("hypothesis")
pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec import ExecOptions, JobRunner, SimJob
from repro.harness.runner import BarResult, bar_config, run_bar
from repro.vec import (
    BACKEND_ENV,
    BackendError,
    resolve_backend,
    run_bar_vec,
    vec_supports,
)

_BAR_FIELDS = [f.name for f in fields(BarResult) if f.name != "normalized"]

#: Random cells stay small so the sweep finishes in seconds per example;
#: parity is size-independent (the full --quick grid is pinned golden).
_BENCHMARKS = ("compress", "espresso", "ora", "sc", "su2cor", "tomcatv")
_LABELS = ("N", "S1", "S10", "S100", "U1", "U10", "E1", "E10",
           "CC1", "CC10")


def _assert_cell_parity(benchmark, machine, label, instructions, warmup,
                        seed=0):
    a = run_bar(benchmark, machine, bar_config(label), instructions,
                warmup, seed=seed, backend="interp")
    b = run_bar_vec(benchmark, machine, bar_config(label), instructions,
                    warmup, seed=seed)
    for name in _BAR_FIELDS:
        assert getattr(a, name) == getattr(b, name), (
            f"{benchmark}/{machine}/{label} i={instructions} w={warmup} "
            f"seed={seed}: {name} interp={getattr(a, name)!r} "
            f"vec={getattr(b, name)!r}")


@settings(max_examples=25, deadline=None)
@given(
    benchmark=st.sampled_from(_BENCHMARKS),
    machine=st.sampled_from(("ooo", "inorder")),
    label=st.sampled_from(_LABELS),
    instructions=st.integers(min_value=200, max_value=2500),
    warmup_frac=st.integers(min_value=0, max_value=2),
    seed=st.integers(min_value=0, max_value=3),
)
def test_differential_backend_parity(benchmark, machine, label,
                                     instructions, warmup_frac, seed):
    """Random cells: every BarResult field digit-exact across backends."""
    _assert_cell_parity(benchmark, machine, label, instructions,
                        instructions * warmup_frac // 2, seed=seed)


def test_parity_on_warmup_equal_run():
    """Warmup == measured instructions: the reset boundary edge."""
    _assert_cell_parity("compress", "inorder", "U10", 1000, 1000)
    _assert_cell_parity("compress", "ooo", "S10", 1000, 1000)


# -- cache-key invariance -----------------------------------------------------

def _figure2_job():
    return SimJob.bar(benchmark="compress", machine="ooo", label="S10",
                      instructions=7500, warmup=3750, seed=0)


def test_cache_key_ignores_backend_env(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    base = _figure2_job().cache_key()
    for backend in ("interp", "vec"):
        monkeypatch.setenv(BACKEND_ENV, backend)
        assert _figure2_job().cache_key() == base


def test_cache_key_ignores_engine_backend(monkeypatch):
    # setenv-then-delenv registers a restore for the value JobRunner is
    # about to write into the environment.
    monkeypatch.setenv(BACKEND_ENV, "interp")
    monkeypatch.delenv(BACKEND_ENV)
    base = _figure2_job().cache_key()
    runner = JobRunner(ExecOptions(cache=False, backend="vec"))
    assert os.environ[BACKEND_ENV] == "vec"
    assert _figure2_job().cache_key() == base
    assert runner.options.backend == "vec"


def test_engine_rejects_unknown_backend():
    with pytest.raises(BackendError):
        JobRunner(ExecOptions(cache=False, backend="turbo"))


def test_serve_spec_backend_validated_but_identity_free():
    from repro.serve.spec import SpecError, validate_job_spec

    spec = {"kind": "bar", "benchmark": "compress", "machine": "ooo",
            "label": "S10", "instructions": 7500, "warmup": 3750}
    base = validate_job_spec(spec).cache_key()
    for backend in ("interp", "vec"):
        job = validate_job_spec(dict(spec, backend=backend))
        assert job.cache_key() == base
    with pytest.raises(SpecError) as excinfo:
        validate_job_spec(dict(spec, backend="turbo"))
    assert excinfo.value.field == "backend"
    with pytest.raises(SpecError):
        validate_job_spec(dict(spec, backend=7))


def test_either_backend_serves_the_shared_cache(tmp_path, monkeypatch):
    """A vec-populated cache answers an interp run — same key, same bits."""
    from repro.exec import bar_result_from_dict

    monkeypatch.setenv(BACKEND_ENV, "interp")  # restore point (see above)
    monkeypatch.delenv(BACKEND_ENV)

    job = SimJob.bar(benchmark="espresso", machine="inorder", label="S1",
                     instructions=800, warmup=400, seed=0)
    writer = JobRunner(ExecOptions(jobs=1, cache=True,
                                   cache_dir=str(tmp_path), backend="vec"))
    first = writer.run([job])[0]
    reader = JobRunner(ExecOptions(jobs=1, cache=True,
                                   cache_dir=str(tmp_path),
                                   backend="interp"))
    second = reader.run([job])[0]
    assert reader.stats.cache_hits == 1
    assert bar_result_from_dict(first) == bar_result_from_dict(second)


# -- dispatch rules -----------------------------------------------------------

def test_resolve_backend_precedence(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    assert resolve_backend() == "interp"
    monkeypatch.setenv(BACKEND_ENV, "vec")
    assert resolve_backend() == "vec"
    assert resolve_backend("interp") == "interp"  # explicit beats env
    monkeypatch.setenv(BACKEND_ENV, "")
    assert resolve_backend() == "interp"
    monkeypatch.setenv(BACKEND_ENV, "turbo")
    with pytest.raises(BackendError):
        resolve_backend()
    with pytest.raises(BackendError):
        resolve_backend("warp")


def test_vec_supports_generic_but_not_callback_handlers():
    from repro.core import InformingConfig, Mechanism
    from repro.core.handlers import CallbackHandler

    assert vec_supports(bar_config("N"))
    for label in ("S1", "U10", "E1", "CC10"):
        assert vec_supports(bar_config(label)), label
    callback = InformingConfig(
        mechanism=Mechanism.TRAP,
        handler=CallbackHandler(lambda *a, **k: None))
    from repro.harness.runner import BarConfig
    assert not vec_supports(BarConfig("cb", callback))


def test_unsupported_bar_falls_back_to_interp(monkeypatch):
    """A callback-handler bar under --backend vec must still run (interp)."""
    from repro.core import InformingConfig, Mechanism
    from repro.core.handlers import CallbackHandler
    from repro.harness.runner import BarConfig

    calls = []
    bar = BarConfig("cb", InformingConfig(
        mechanism=Mechanism.TRAP,
        handler=CallbackHandler(lambda ref: calls.append(ref) or [])))
    monkeypatch.setenv(BACKEND_ENV, "vec")
    result = run_bar("compress", "ooo", bar, 500, 0)
    assert result.cycles > 0
    assert calls  # the Python handler really ran — interp path


class TestBackendTelemetry:
    """The FINISHED event reports the backend that actually ran.

    This is the observable form of the fallback rule: a stateful
    replacement policy (plru/rrip/brrip) cannot replay through the
    decode-once vec path, so a vec-requested job must record
    ``backend="interp"`` — silently running vec anyway would break
    digit-exactness, and silently hiding the fallback would make the
    telemetry lie about provenance.
    """

    def _finished(self, monkeypatch, policy):
        from repro.exec import CollectingSink

        monkeypatch.setenv(BACKEND_ENV, "vec")
        sink = CollectingSink()
        runner = JobRunner(ExecOptions(jobs=1, cache=False),
                           sinks=[sink])
        runner.run([SimJob.bar(benchmark="compress", machine="lab",
                               label="N", instructions=500, warmup=250,
                               policy=policy)])
        events = [e for e in sink.events if e.event == "finished"]
        assert len(events) == 1
        return events[0]

    def test_vec_eligible_policy_reports_vec(self, monkeypatch):
        assert self._finished(monkeypatch, "lru").backend == "vec"

    def test_stateful_policy_falls_back_visibly(self, monkeypatch):
        assert self._finished(monkeypatch, "rrip").backend == "interp"
