"""Unit tests for workload characterisation."""

import pytest

from repro.workloads import SPEC92, spec92_workload
from repro.workloads.characterize import characterize, render_profile


class TestCharacterize:
    def test_limit_respected(self):
        profile = characterize(spec92_workload("compress").stream(50_000),
                               limit=5_000)
        assert profile.instructions == 5_000

    def test_mix_sums_to_instructions(self):
        profile = characterize(spec92_workload("alvinn").stream(10_000))
        assert sum(profile.mix.values()) == profile.instructions

    @pytest.mark.parametrize("name", ["compress", "alvinn", "ora"])
    def test_realised_fractions_match_spec(self, name):
        spec = SPEC92[name]
        profile = characterize(spec92_workload(name).stream(20_000))
        assert profile.mem_fraction == pytest.approx(spec.mem_fraction,
                                                     abs=0.06)
        assert profile.branch_fraction == pytest.approx(
            spec.branch_fraction, abs=0.05)

    def test_branch_predictability_tracks_bias(self):
        profile = characterize(spec92_workload("swm256").stream(20_000))
        spec = SPEC92["swm256"]
        assert profile.mean_branch_predictability == pytest.approx(
            spec.branch_bias, abs=0.05)

    def test_footprints_differ_between_small_and_large(self):
        ora = characterize(spec92_workload("ora").stream(20_000))
        tomcatv = characterize(spec92_workload("tomcatv").stream(20_000))
        assert tomcatv.footprint_bytes > 4 * ora.footprint_bytes

    def test_static_refs_bounded_by_body(self):
        workload = spec92_workload("compress")
        profile = characterize(workload.stream(20_000))
        assert profile.static_ref_pcs <= set(workload.static_reference_pcs())

    def test_render(self):
        profile = characterize(spec92_workload("ora").stream(5_000))
        text = render_profile("ora", profile)
        assert "memory fraction" in text
        assert "ora" in text

    def test_empty_stream(self):
        profile = characterize(iter([]))
        assert profile.instructions == 0
        assert profile.mem_fraction == 0.0
        assert profile.mean_branch_predictability == 1.0
