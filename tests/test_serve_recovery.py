"""Gateway durability: the service journal, restart recovery, and
service-level chaos (torn journals, ENOSPC, dropped SSE clients)."""

import asyncio
import threading
import time

import pytest

from repro.durable import read_records
from repro.sanitize.chaos import arm_journal_enospc, truncate_tail
from repro.serve import Gateway, ServeOptions, validate_job_spec
from tests.test_serve_gateway import LiveServer, tiny_spec


def echo_execute(job):
    return {"label": job.label, "seed": job.seed}


def serve_options(tmp_path, **overrides):
    fields = dict(shards=1,
                  cache_dir=str(tmp_path / "cache"),
                  journal_path=str(tmp_path / "serve-journal.jsonl"))
    fields.update(overrides)
    return ServeOptions(**fields)


def run_incarnation(options, specs=(), execute=echo_execute,
                    wait_empty=False, after_start=None):
    """Boot a gateway, submit *specs*, drain; returns the gateway."""

    async def scenario():
        gateway = Gateway(options, execute=execute)
        await gateway.start()
        if after_start is not None:
            after_start(gateway)
        for spec in specs:
            await gateway.submit(spec)
        if wait_empty:
            deadline = time.monotonic() + 10
            while gateway.in_flight and time.monotonic() < deadline:
                await asyncio.sleep(0.02)
            assert not gateway.in_flight, "recovered jobs never finished"
        await gateway.drain(grace=5)
        return gateway

    return asyncio.run(scenario())


def forge_crash(journal_path, drop_final_finishes=1):
    """Rewrite the journal without its last *n* ``job_finished`` lines —
    the exact file a gateway SIGKILLed mid-execution leaves behind."""
    with open(journal_path) as fh:
        lines = fh.readlines()
    kept, dropped = [], 0
    for line in reversed(lines):
        if dropped < drop_final_finishes and '"job_finished"' in line:
            dropped += 1
            continue
        kept.append(line)
    assert dropped == drop_final_finishes
    with open(journal_path, "w") as fh:
        fh.writelines(reversed(kept))


class TestJournalWrites:
    def test_accepted_and_finished_are_journaled(self, tmp_path):
        options = serve_options(tmp_path)
        gateway = run_incarnation(options, [tiny_spec(seed=1)])
        records, bad, truncated = read_records(options.journal_path)
        assert not truncated and bad == 0
        recs = [r["rec"] for r in records]
        assert recs == ["journal_header", "job_accepted", "job_finished"]
        assert records[0]["kind"] == "serve"
        key = validate_job_spec(tiny_spec(seed=1)).cache_key()
        assert records[1]["key"] == key
        assert records[1]["job"]["benchmark"] == "compress"
        assert gateway.durability()["enabled"]

    def test_failed_job_journaled_as_failed(self, tmp_path):
        def broken_execute(job):
            raise ValueError("chaos: engine failure")

        from repro.serve import JobError

        async def scenario():
            gateway = Gateway(serve_options(tmp_path),
                              execute=broken_execute)
            await gateway.start()
            with pytest.raises(JobError):
                await gateway.submit(tiny_spec(seed=2))
            await gateway.drain(grace=5)
            return gateway

        gateway = asyncio.run(scenario())
        records, _, _ = read_records(gateway.options.journal_path)
        assert [r["rec"] for r in records][-1] == "job_failed"
        assert "chaos" in records[-1]["error"]


class TestRestartRecovery:
    def test_incomplete_job_reenqueued_and_finished(self, tmp_path):
        options = serve_options(tmp_path)
        first = run_incarnation(options,
                                [tiny_spec(seed=1), tiny_spec(seed=2)])
        # Forge the kill: seed=2 accepted but not finished, and its
        # result never reached the cache.
        forge_crash(options.journal_path)
        victim = validate_job_spec(tiny_spec(seed=2))
        first.cache.path_for(victim.cache_key()).unlink()

        second = run_incarnation(options, wait_empty=True)
        durability = second.durability()
        assert durability["recovered"] == 1
        assert durability["orphaned"] == 0
        assert durability["already_cached"] == 0
        # The recovered job really ran and its result is durable now.
        assert second.registry.counters()["serve.executed"] == 1
        assert second.cache.get(victim) is not None
        # The rewritten journal is a complete, settled history again.
        records, _, truncated = read_records(options.journal_path)
        assert not truncated
        recs = [r["rec"] for r in records]
        assert recs == ["journal_header", "job_accepted", "job_finished"]
        assert records[1]["recovered"] is True

    def test_cached_but_unjournaled_counts_already_cached(self, tmp_path):
        """Crash between the cache store and the journal mark: the work
        is done, recovery just notices and does not re-run it."""
        options = serve_options(tmp_path)
        run_incarnation(options, [tiny_spec(seed=3)])
        forge_crash(options.journal_path)  # drop the finish, keep the cache

        second = run_incarnation(options)
        durability = second.durability()
        assert durability["recovered"] == 1
        assert durability["already_cached"] == 1
        assert second.registry.counters().get("serve.executed", 0) == 0

    def test_new_request_coalesces_onto_recovered_ticket(self, tmp_path):
        release = threading.Event()

        def gated_execute(job):
            assert release.wait(10)
            return {"label": job.label, "seed": job.seed}

        options = serve_options(tmp_path)
        first = run_incarnation(options, [tiny_spec(seed=4)])
        forge_crash(options.journal_path)
        victim = validate_job_spec(tiny_spec(seed=4))
        first.cache.path_for(victim.cache_key()).unlink()

        async def scenario():
            gateway = Gateway(options, execute=gated_execute)
            await gateway.start()
            assert victim.cache_key() in gateway.in_flight
            submit = asyncio.ensure_future(
                gateway.submit(tiny_spec(seed=4)))
            await asyncio.sleep(0.1)
            release.set()
            outcome = await submit
            await gateway.drain(grace=5)
            return gateway, outcome

        gateway, outcome = asyncio.run(scenario())
        assert outcome["meta"]["coalesced"] is True
        assert gateway.registry.counters()["serve.coalesced"] == 1
        assert gateway.registry.counters()["serve.executed"] == 1

    def test_torn_record_orphans_nothing_it_can_trust(self, tmp_path):
        options = serve_options(tmp_path)
        run_incarnation(options, [tiny_spec(seed=5)])
        # Tear mid-record: the trusted prefix ends before the final
        # finish, so the (cached) job counts as recovered/already_cached.
        truncate_tail(options.journal_path, 5)
        second = run_incarnation(options)
        durability = second.durability()
        assert durability["journal_truncated"] is True
        assert durability["journal_bad_lines"] == 1
        assert durability["recovered"] == 1
        assert durability["already_cached"] == 1

    def test_unrebuildable_record_is_orphaned(self, tmp_path):
        from repro.durable import RunJournal

        options = serve_options(tmp_path)
        run_incarnation(options, [tiny_spec(seed=6)])
        # A journaled spec the current SimJob schema cannot rebuild
        # (schema drift across the restart).
        with RunJournal(options.journal_path, fsync="off") as journal:
            journal.record("job_accepted", key="f" * 64,
                           job={"alien": True})
        second = run_incarnation(options)
        durability = second.durability()
        assert durability["orphaned"] == 1
        assert durability["recovered"] == 0

    def test_alien_journal_orphans_every_record(self, tmp_path):
        from repro.durable import RunJournal, header_record

        options = serve_options(tmp_path)
        with RunJournal(options.journal_path, fsync="off") as journal:
            journal.append(header_record("exec_run", run_id="r1"))
            journal.record("job_start", key="a" * 64)
        gateway = run_incarnation(options)
        assert gateway.durability()["orphaned"] == 2
        # And the file was rewritten as a fresh serve journal.
        records, _, _ = read_records(options.journal_path)
        assert records[0]["kind"] == "serve"


class TestServiceChaos:
    @pytest.mark.filterwarnings(
        "ignore:run journal.*not writable:RuntimeWarning")
    def test_enospc_degrades_to_counted_outcome(self, tmp_path):
        options = serve_options(tmp_path)
        gateway = run_incarnation(
            options, [tiny_spec(seed=7), tiny_spec(seed=8)],
            after_start=lambda gw: arm_journal_enospc(gw.journal, after=1))
        # Both jobs served fine; the journal died quietly and visibly.
        assert gateway.registry.counters()["serve.executed"] == 2
        assert gateway.registry.counters()["serve.journal_errors"] >= 1
        durability = gateway.durability()
        assert durability["degraded"] is True
        assert durability["journal_errors"] >= 1

    def test_client_disconnect_mid_sse_is_counted(self, tmp_path):
        import json
        import socket

        release = threading.Event()

        def gated_execute(job):
            assert release.wait(10)
            return {"label": job.label, "seed": job.seed}

        options = serve_options(tmp_path)
        with LiveServer(options, execute=gated_execute) as server:
            body = json.dumps(tiny_spec(seed=9)).encode()
            request = (f"POST /v1/jobs?stream=1 HTTP/1.1\r\n"
                       f"Host: {server.host}\r\n"
                       f"Content-Type: application/json\r\n"
                       f"Content-Length: {len(body)}\r\n"
                       f"\r\n").encode() + body
            sock = socket.create_connection((server.host, server.port),
                                            timeout=10)
            sock.sendall(request)
            head = sock.recv(64)  # the SSE response has started
            assert b"200" in head
            # The client vanishes mid-stream: reset, don't FIN-drain.
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                            b"\x01\x00\x00\x00\x00\x00\x00\x00")
            sock.close()
            release.set()

            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                counters = server.gateway.registry.counters()
                if (counters.get("serve.client_disconnects", 0) >= 1
                        and counters.get("serve.executed", 0) >= 1):
                    break
                time.sleep(0.05)
            counters = server.gateway.registry.counters()
            assert counters["serve.client_disconnects"] >= 1
            # The run itself survived the disconnect: executed, cached,
            # journaled finished.
            assert counters["serve.executed"] == 1
            victim = validate_job_spec(tiny_spec(seed=9))
            assert server.gateway.cache.get(victim) is not None
        records, _, _ = read_records(options.journal_path)
        assert [r["rec"] for r in records][-1] == "job_finished"

    def test_stats_endpoint_exposes_durability(self, tmp_path):
        options = serve_options(tmp_path, shards=2)
        run_incarnation(options, [tiny_spec(seed=10)])
        forge_crash(options.journal_path)
        with LiveServer(options) as server:
            with server.client() as client:
                status, body = client.stats()
        assert status == 200
        durability = body["durability"]
        assert durability["enabled"] is True
        assert durability["recovered"] == 1
        assert durability["journal"] == options.journal_path
