"""The ``python -m repro.exec cache`` management CLI."""

import pytest

from repro.exec import ExecOptions, JobRunner, SimJob
from repro.exec.cli import main
from tests.test_exec_engine import echo_execute


@pytest.fixture
def warm_dir(tmp_path):
    """A cache directory holding two entries."""
    jobs = [SimJob.bar(benchmark=name, machine="m", label="N",
                       instructions=1, warmup=0) for name in ("a", "b")]
    JobRunner(ExecOptions(jobs=1, cache=True, cache_dir=str(tmp_path)),
              execute=echo_execute).run(jobs)
    return tmp_path


def test_stats(warm_dir, capsys):
    assert main(["cache", "stats", "--dir", str(warm_dir)]) == 0
    out = capsys.readouterr().out
    assert str(warm_dir) in out
    assert "entries     2" in out


def test_purge(warm_dir, capsys):
    assert main(["cache", "purge", "--dir", str(warm_dir)]) == 0
    assert "purged 2" in capsys.readouterr().out
    main(["cache", "stats", "--dir", str(warm_dir)])
    assert "entries     0" in capsys.readouterr().out


def test_path_honours_env(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
    assert main(["cache", "path"]) == 0
    assert str(tmp_path / "env-cache") in capsys.readouterr().out


def test_prune_to_zero_removes_everything(warm_dir, capsys):
    assert main(["cache", "prune", "--dir", str(warm_dir),
                 "--max-bytes", "0"]) == 0
    assert "pruned 2" in capsys.readouterr().out
    main(["cache", "stats", "--dir", str(warm_dir)])
    assert "entries     0" in capsys.readouterr().out


def test_prune_under_cap_keeps_entries(warm_dir, capsys):
    assert main(["cache", "prune", "--dir", str(warm_dir),
                 "--max-bytes", "1G"]) == 0
    assert "pruned 0" in capsys.readouterr().out


def test_prune_defaults_to_env_cap(warm_dir, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "0")
    assert main(["cache", "prune", "--dir", str(warm_dir)]) == 0
    assert "pruned 2" in capsys.readouterr().out


def test_prune_requires_some_cap(warm_dir):
    with pytest.raises(SystemExit):
        main(["cache", "prune", "--dir", str(warm_dir)])


def test_prune_rejects_bad_size(warm_dir):
    with pytest.raises(SystemExit):
        main(["cache", "prune", "--dir", str(warm_dir),
              "--max-bytes", "lots"])


def test_stats_reports_cap(warm_dir, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "1M")
    main(["cache", "stats", "--dir", str(warm_dir)])
    assert "size cap" in capsys.readouterr().out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
