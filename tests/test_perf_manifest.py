"""Run-manifest store: engine hook, layout, provenance, resolution."""

import json
import os

import pytest

from repro.exec import ExecOptions, JobRunner, SimJob
from repro.perf import (
    MANIFEST_SCHEMA,
    ManifestError,
    config_digest,
    list_runs,
    load_manifest,
    machine_fingerprint,
    new_run_id,
    runs_root,
)


def echo_execute(job):
    return {"label": job.label, "seed": job.seed}


def make_job(name="a", seed=0):
    return SimJob.bar(benchmark=name, machine="m", label="L",
                      instructions=1, warmup=0, seed=seed)


def run_with_manifest(tmp_path, jobs=None, **options):
    runner = JobRunner(
        ExecOptions(jobs=1, cache=False, manifest_dir=str(tmp_path),
                    run_meta={"experiment": "exp-test",
                              "argv": ["exp-test"], "seed": 3},
                    **options),
        execute=echo_execute)
    results = runner.run(jobs if jobs is not None
                         else [make_job("a"), make_job("b")])
    return runner, results


class TestEngineHook:
    def test_run_writes_manifest_json(self, tmp_path):
        runner, _ = run_with_manifest(tmp_path)
        assert runner.last_manifest is not None
        assert runner.last_manifest.endswith(os.path.join("", "manifest.json"))
        manifest = json.loads(open(runner.last_manifest).read())
        assert manifest["kind"] == "run_manifest"
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["experiment"] == "exp-test"
        assert manifest["argv"] == ["exp-test"]
        assert manifest["seed"] == 3
        assert manifest["status"] == "ok"
        assert manifest["workers"] == 1
        assert manifest["stats"]["finished"] == 2

    def test_manifest_cells_carry_walls_and_sim_stats(self, tmp_path):
        runner, results = run_with_manifest(tmp_path)
        manifest = json.loads(open(runner.last_manifest).read())
        cells = manifest["cells"]
        assert [c["label"] for c in cells] == ["a/m/L", "b/m/L"]
        for cell, result in zip(cells, results):
            assert cell["status"] == "ok"
            assert cell["cache"] == "off"
            assert cell["wall"] is not None and cell["wall"] >= 0
            assert cell["sim"] == result
            assert len(cell["key"]) == 16

    def test_manifest_records_machine_and_config_digest(self, tmp_path):
        runner, _ = run_with_manifest(tmp_path)
        manifest = json.loads(open(runner.last_manifest).read())
        fingerprint = manifest["machine"]
        assert set(fingerprint) >= {"platform", "python", "cpus"}
        jobs = [make_job("a"), make_job("b")]
        assert manifest["config_digest"] == config_digest(jobs)
        # Order-independent: the digest sorts the content addresses.
        assert config_digest(list(reversed(jobs))) == config_digest(jobs)

    def test_failed_run_still_writes_manifest(self, tmp_path):
        def boom(job):
            raise ValueError("broken payload")

        runner = JobRunner(
            ExecOptions(jobs=1, cache=False, retries=0,
                        manifest_dir=str(tmp_path)),
            execute=boom)
        with pytest.raises(Exception):
            runner.run([make_job("a")])
        manifest = json.loads(open(runner.last_manifest).read())
        assert manifest["status"] == "failed"
        assert "JobFailedError" in manifest["error"]
        assert manifest["cells"][0]["status"] == "unfinished"

    def test_no_manifest_dir_means_no_write(self, tmp_path):
        runner = JobRunner(ExecOptions(jobs=1, cache=False),
                           execute=echo_execute)
        runner.run([make_job("a")])
        assert runner.last_manifest is None
        assert list(tmp_path.iterdir()) == []

    def test_each_run_gets_its_own_manifest(self, tmp_path):
        runner, _ = run_with_manifest(tmp_path)
        first = runner.last_manifest
        runner.run([make_job("c")])
        assert runner.last_manifest != first
        assert len(list_runs(str(tmp_path))) == 2


class TestResolution:
    def test_load_by_run_id_dir_and_path(self, tmp_path):
        runner, _ = run_with_manifest(tmp_path)
        path = runner.last_manifest
        run_dir = os.path.dirname(path)
        run_id = os.path.basename(run_dir)
        by_path = load_manifest(path)
        assert load_manifest(run_dir) == by_path
        assert load_manifest(run_id, root=str(tmp_path)) == by_path
        assert by_path["run_id"] == run_id

    def test_missing_manifest_is_a_clear_error(self, tmp_path):
        with pytest.raises(ManifestError) as err:
            load_manifest("no-such-run", root=str(tmp_path))
        assert "no manifest found" in str(err.value)

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(
            {"kind": "run_manifest", "schema": 999}))
        with pytest.raises(ManifestError) as err:
            load_manifest(str(path))
        assert "schema 999" in str(err.value)

    def test_non_manifest_json_rejected(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({"something": "else"}))
        with pytest.raises(ManifestError):
            load_manifest(str(path))

    def test_runs_root_prefers_explicit_then_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUNS_DIR", raising=False)
        assert runs_root() == os.path.join("results", "runs")
        monkeypatch.setenv("REPRO_RUNS_DIR", "/elsewhere")
        assert runs_root() == "/elsewhere"
        assert runs_root("/explicit") == "/explicit"


class TestIds:
    def test_run_ids_are_unique_and_tagged(self):
        first, second = new_run_id("figure2"), new_run_id("figure2")
        assert first != second
        assert "figure2" in first

    def test_fingerprint_is_jsonable(self):
        json.dumps(machine_fingerprint())
