"""Cross-run comparison: digit-exact sim diffing, bootstrap walls, CLI."""

import json

from repro.perf import (
    bootstrap_ci,
    classify_ratio,
    compare_bench,
    compare_main,
    compare_manifests,
    compare_trace_dirs,
)
from repro.perf.manifest import MANIFEST_KIND, MANIFEST_SCHEMA


def make_manifest(walls, sims=None, run_id="run", benchmark="compress",
                  config_digest="cfg"):
    """A minimal but schema-valid manifest with controlled cells."""
    cells = []
    for index, wall in enumerate(walls):
        sim = (sims[index] if sims is not None
               else {"cycles": 100 + index})
        cells.append({
            "label": f"{benchmark}/ooo/S{index}",
            "key": f"k{index:015d}",
            "kind": "bar",
            "benchmark": benchmark,
            "machine": "ooo",
            "status": "ok",
            "cache": "miss",
            "wall": wall,
            "attempts": 0,
            "sim": sim,
            "metrics_digest": None,
        })
    return {
        "kind": MANIFEST_KIND, "schema": MANIFEST_SCHEMA,
        "run_id": run_id, "experiment": "figure2", "argv": None,
        "seed": 0, "git_sha": None, "written": 0.0, "machine": {},
        "config_digest": config_digest, "workers": 1,
        "cache_enabled": False, "telemetry_path": None, "status": "ok",
        "error": None, "stats": {}, "cells": cells,
    }


class TestBootstrap:
    def test_deterministic_for_a_seed(self):
        samples = [1.0, 1.1, 0.9, 1.05, 0.95]
        assert bootstrap_ci(samples, seed=7) == bootstrap_ci(samples, seed=7)

    def test_single_sample_degenerates_to_point(self):
        assert bootstrap_ci([1.2]) == (1.2, 1.2, 1.2)

    def test_ci_brackets_the_mean(self):
        mean, lo, hi = bootstrap_ci([0.9, 1.0, 1.1, 1.0, 0.95, 1.05])
        assert lo <= mean <= hi

    def test_classify_no_change_when_ci_straddles_one(self):
        assert classify_ratio(1.05, 0.97, 1.12) == "no change"
        assert classify_ratio(1.5, 1.4, 1.6) == "regression"
        assert classify_ratio(1.15, 1.12, 1.18) == "warn"
        assert classify_ratio(0.8, 0.75, 0.85) == "faster"
        assert classify_ratio(1.05, 1.02, 1.08) == "slower (within threshold)"


class TestManifestMode:
    def test_identical_runs_are_digit_exact_no_change(self):
        a = make_manifest([0.5, 0.5, 0.5, 0.5], run_id="a")
        b = make_manifest([0.51, 0.49, 0.5, 0.505], run_id="b")
        report = compare_manifests(a, b)
        assert report["sim_drift"] == []
        assert report["compared_cells"] == 4
        assert report["wall"]["overall"]["verdict"] == "no change"
        assert report["verdict"] == "ok"

    def test_sim_drift_is_a_correctness_alarm(self):
        a = make_manifest([0.5, 0.5])
        b = make_manifest([0.5, 0.5],
                          sims=[{"cycles": 100}, {"cycles": 999}])
        report = compare_manifests(a, b)
        assert report["verdict"] == "sim drift"
        assert report["sim_drift"] == [
            {"label": "compress/ooo/S1", "field": "cycles",
             "a": 101, "b": 999}]

    def test_uniform_slowdown_is_a_regression(self):
        a = make_manifest([0.5] * 6)
        b = make_manifest([0.7] * 6)  # 1.4x across every cell
        report = compare_manifests(a, b)
        assert report["wall"]["overall"]["verdict"] == "regression"
        assert report["verdict"] == "regression"

    def test_cache_hits_are_excluded_from_wall_stats(self):
        a = make_manifest([0.5, 0.5])
        b = make_manifest([0.5, 0.5])
        a["cells"][0]["cache"] = b["cells"][0]["cache"] = "hit"
        a["cells"][0]["wall"] = b["cells"][0]["wall"] = 0.0
        report = compare_manifests(a, b)
        assert report["wall"]["overall"]["cells"] == 1

    def test_differing_config_digests_are_noted(self):
        a = make_manifest([0.5], config_digest="one")
        b = make_manifest([0.5], config_digest="two")
        report = compare_manifests(a, b)
        assert any("config digests differ" in note
                   for note in report["notes"])

    def test_per_benchmark_grouping(self):
        a = make_manifest([0.5, 0.5])
        b = make_manifest([0.5, 0.5])
        report = compare_manifests(a, b)
        assert set(report["wall"]["benchmarks"]) == {"compress"}


class TestBenchMode:
    def test_hotpath_style_thresholds(self):
        a = {"schema": 1, "microbenchmarks": {
            "timings": {"fast": 0.10, "slow": 0.10, "warn": 0.10}}}
        b = {"schema": 1, "microbenchmarks": {
            "timings": {"fast": 0.09, "slow": 0.20, "warn": 0.115}}}
        report = compare_bench(a, b)
        verdicts = {row["name"]: row["verdict"]
                    for row in report["timings"]}
        assert verdicts == {"micro/fast": "faster",
                            "micro/slow": "regression",
                            "micro/warn": "warn"}
        assert report["verdict"] == "regression"

    def test_harness_style_walls(self):
        entry = {"wall_seconds": 10.0}
        a = {"schema": 2, "experiments": {"figure2": {"cold": entry}}}
        b = {"schema": 2, "experiments": {"figure2": {
            "cold": {"wall_seconds": 10.4}}}}
        report = compare_bench(a, b)
        assert report["timings"][0]["name"] == "figure2/cold"
        assert report["verdict"] == "ok"

    def test_missing_names_are_noted_not_fatal(self):
        a = {"schema": 1, "microbenchmarks": {"timings": {"x": 1.0}}}
        b = {"schema": 1, "microbenchmarks": {"timings": {"y": 1.0}}}
        report = compare_bench(a, b)
        assert report["timings"] == []
        assert len(report["notes"]) == 2


class TestTraceDirMode:
    def _write_metrics(self, directory, stem, payload):
        directory.mkdir(exist_ok=True)
        (directory / f"{stem}.metrics.json").write_text(json.dumps(payload))

    def test_identical_dirs_are_exact(self, tmp_path):
        payload = {"metrics": {"counters": {"l1.hit": 5}}, "events": 9}
        self._write_metrics(tmp_path / "a", "cell", payload)
        self._write_metrics(tmp_path / "b", "cell", payload)
        report = compare_trace_dirs(str(tmp_path / "a"), str(tmp_path / "b"))
        assert report["verdict"] == "ok"
        assert report["compared_cells"] == 1

    def test_metric_drift_detected(self, tmp_path):
        self._write_metrics(tmp_path / "a", "cell",
                            {"metrics": {"counters": {"l1.hit": 5}}})
        self._write_metrics(tmp_path / "b", "cell",
                            {"metrics": {"counters": {"l1.hit": 6}}})
        report = compare_trace_dirs(str(tmp_path / "a"), str(tmp_path / "b"))
        assert report["verdict"] == "sim drift"
        assert report["sim_drift"][0]["field"] == "metrics"


class TestCLI:
    def _write(self, tmp_path, name, data):
        path = tmp_path / name
        path.write_text(json.dumps(data))
        return str(path)

    def test_manifest_compare_exit_codes_and_json(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", make_manifest([0.5, 0.5]))
        b = self._write(tmp_path, "b.json", make_manifest([0.5, 0.5]))
        assert compare_main([a, b, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["verdict"] == "ok"
        assert report["sim_drift"] == []

    def test_sim_drift_fails_the_cli(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", make_manifest([0.5]))
        drifted = make_manifest([0.5], sims=[{"cycles": 42}])
        b = self._write(tmp_path, "b.json", drifted)
        assert compare_main([a, b]) == 1
        assert "DRIFTING" in capsys.readouterr().out

    def test_bench_compare_via_cli(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", {
            "schema": 1, "microbenchmarks": {"timings": {"x": 0.1}}})
        b = self._write(tmp_path, "b.json", {
            "schema": 1, "microbenchmarks": {"timings": {"x": 0.3}}})
        assert compare_main([a, b]) == 1
        out = capsys.readouterr().out
        assert "regression" in out
        assert compare_main([a, b, "--fail-above", "100"]) == 0
        capsys.readouterr()

    def test_mixed_modes_rejected(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", make_manifest([0.5]))
        b = self._write(tmp_path, "b.json", {
            "schema": 1, "microbenchmarks": {"timings": {"x": 0.1}}})
        assert compare_main([a, b]) == 2
        assert "cannot compare" in capsys.readouterr().out

    def test_unknown_manifest_schema_is_exit_2(self, tmp_path, capsys):
        bad = self._write(tmp_path, "bad.json",
                          {"kind": MANIFEST_KIND, "schema": 999})
        good = self._write(tmp_path, "good.json", make_manifest([0.5]))
        assert compare_main([bad, good]) == 2
        assert "schema 999" in capsys.readouterr().out

    def test_trace_dir_mode_via_cli(self, tmp_path, capsys):
        for side in ("a", "b"):
            (tmp_path / side).mkdir()
            (tmp_path / side / "cell.metrics.json").write_text(
                json.dumps({"metrics": {"counters": {}}}))
        assert compare_main([str(tmp_path / "a"), str(tmp_path / "b"),
                             "--trace-dir"]) == 0
        assert "digit-exact" in capsys.readouterr().out
