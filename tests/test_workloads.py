"""Unit tests for access patterns and the synthetic workload models."""

import pytest

from repro.isa import OpClass
from repro.workloads import (
    ConflictPattern,
    FIGURE2_BENCHMARKS,
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    MixedPattern,
    PointerChasePattern,
    RandomPattern,
    SequentialPattern,
    SPEC92,
    StridedPattern,
    SyntheticWorkload,
    WorkloadSpec,
    spec92_workload,
)
from repro.memory import Cache, CacheConfig


class TestSequentialPattern:
    def test_stride_and_wrap(self):
        pattern = SequentialPattern(base=100, extent=12, stride=4)
        assert [pattern.next_address() for _ in range(4)] == [100, 104, 108, 100]

    def test_reset(self):
        pattern = SequentialPattern(base=0, extent=100)
        pattern.next_address()
        pattern.reset()
        assert pattern.next_address() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SequentialPattern(0, extent=0)


class TestStridedPattern:
    def test_round_robin_streams(self):
        pattern = StridedPattern([0, 1000], extent=100, stride=4)
        addrs = [pattern.next_address() for _ in range(4)]
        assert addrs == [0, 1000, 4, 1004]

    def test_needs_a_stream(self):
        with pytest.raises(ValueError):
            StridedPattern([], extent=10)


class TestRandomPattern:
    def test_stays_in_working_set(self):
        pattern = RandomPattern(base=0x1000, working_set=256, seed=1)
        for _ in range(100):
            addr = pattern.next_address()
            assert 0x1000 <= addr < 0x1100
            assert addr % 4 == 0

    def test_deterministic_after_reset(self):
        pattern = RandomPattern(0, 1024, seed=7)
        first = [pattern.next_address() for _ in range(10)]
        pattern.reset()
        assert [pattern.next_address() for _ in range(10)] == first


class TestConflictPattern:
    def test_thrashes_direct_mapped_cache(self):
        pattern = ConflictPattern(base=0, count=3, spacing=8 * 1024)
        cache = Cache(CacheConfig(size=8 * 1024, assoc=1, line_size=32))
        misses = 0
        for _ in range(300):
            addr = pattern.next_address()
            if not cache.probe(addr):
                misses += 1
                cache.fill(addr)
        assert misses == 300  # every access conflicts in one set

    def test_coexists_in_set_associative_cache(self):
        pattern = ConflictPattern(base=0, count=3, spacing=8 * 1024)
        cache = Cache(CacheConfig(size=32 * 1024, assoc=2, line_size=32))
        misses = 0
        for _ in range(300):
            addr = pattern.next_address()
            if not cache.probe(addr):
                misses += 1
                cache.fill(addr)
        # Only compulsory misses as the sweep advances through lines
        # (3 lines per 8 sweep rounds), versus 100% in the 8KB DM cache.
        assert misses < 60

    def test_needs_two_lines(self):
        with pytest.raises(ValueError):
            ConflictPattern(0, count=1)


class TestPointerChasePattern:
    def test_walks_full_cycle(self):
        pattern = PointerChasePattern(base=0, nodes=16, node_size=32, seed=3)
        seen = {pattern.next_address() for _ in range(16)}
        assert len(seen) == 16  # a single cycle covers every node

    def test_serial_flag(self):
        assert PointerChasePattern(0, nodes=4).serial
        assert not SequentialPattern(0, 100).serial


class TestMixedPattern:
    def test_blends_components(self):
        pattern = MixedPattern([
            (0.5, SequentialPattern(0, extent=64)),
            (0.5, SequentialPattern(0x100000, extent=64)),
        ], seed=5)
        addrs = [pattern.next_address() for _ in range(200)]
        low = sum(1 for a in addrs if a < 0x100000)
        assert 50 < low < 150

    def test_serial_component_rejected(self):
        with pytest.raises(ValueError):
            MixedPattern([(1.0, PointerChasePattern(0, nodes=4))])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MixedPattern([])


class TestWorkloadSpec:
    def test_validation(self):
        factory = lambda: SequentialPattern(0, 1024)
        with pytest.raises(ValueError):
            WorkloadSpec("bad", factory, mem_fraction=0.9)
        with pytest.raises(ValueError):
            WorkloadSpec("bad", factory, branch_bias=0.3)
        with pytest.raises(ValueError):
            WorkloadSpec("bad", factory, dependence_window=0)
        with pytest.raises(ValueError):
            WorkloadSpec("bad", factory, body_length=2)


class TestSyntheticWorkload:
    def make(self, **kw):
        params = dict(name="test",
                      pattern_factory=lambda: SequentialPattern(0, 4096),
                      mem_fraction=0.3, branch_fraction=0.1, seed=3)
        params.update(kw)
        return SyntheticWorkload(WorkloadSpec(**params))

    def test_stream_length_exact(self):
        workload = self.make()
        assert len(list(workload.stream(997))) == 997

    def test_deterministic(self):
        a = [(i.op, i.addr, i.pc) for i in self.make().stream(500)]
        b = [(i.op, i.addr, i.pc) for i in self.make().stream(500)]
        assert a == b

    def test_composition_tracks_fractions(self):
        workload = self.make(mem_fraction=0.4, branch_fraction=0.1,
                             body_length=400)
        comp = workload.composition()
        total = sum(comp.values())
        assert comp["mem"] / total == pytest.approx(0.4, abs=0.08)
        assert comp["branch"] / total == pytest.approx(0.1, abs=0.06)

    def test_static_pcs_are_stable_across_iterations(self):
        workload = self.make(body_length=50)
        stream = list(workload.stream(500))
        pcs = {inst.pc for inst in stream}
        assert len(pcs) <= 50

    def test_static_reference_pcs(self):
        workload = self.make()
        ref_pcs = set(workload.static_reference_pcs())
        stream_ref_pcs = {i.pc for i in workload.stream(2000) if i.is_mem}
        assert stream_ref_pcs <= ref_pcs

    def test_branch_outcomes_biased(self):
        workload = self.make(branch_bias=0.95, branch_fraction=0.2)
        branches = [i for i in workload.stream(5000)
                    if i.op is OpClass.BRANCH]
        # Per-slot bias ~0.95 or 0.05: the aggregate taken rate varies,
        # but each static branch should be strongly biased.
        from collections import defaultdict
        per_pc = defaultdict(list)
        for inst in branches:
            per_pc[inst.pc].append(inst.taken)
        for outcomes in per_pc.values():
            if len(outcomes) >= 20:
                rate = sum(outcomes) / len(outcomes)
                assert rate > 0.8 or rate < 0.2

    def test_pointer_chase_serializes_loads(self):
        workload = self.make(
            pattern_factory=lambda: PointerChasePattern(0, nodes=64))
        loads = [i for i in workload.stream(300) if i.op is OpClass.LOAD]
        assert loads
        assert all(i.dest in i.srcs or i.srcs == (i.dest,) for i in loads
                   if i.dest is not None)


class TestSpec92Registry:
    def test_fourteen_benchmarks(self):
        assert len(SPEC92) == 14
        assert len(INT_BENCHMARKS) == 5
        assert len(FP_BENCHMARKS) == 9
        assert len(FIGURE2_BENCHMARKS) == 13
        assert "su2cor" not in FIGURE2_BENCHMARKS

    @pytest.mark.parametrize("name", sorted(SPEC92))
    def test_every_model_streams(self, name):
        workload = spec92_workload(name)
        stream = list(workload.stream(2000))
        assert len(stream) == 2000
        assert any(inst.is_mem for inst in stream)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            spec92_workload("gcc")

    def test_int_benchmarks_are_integer_codes(self):
        for name in INT_BENCHMARKS:
            assert SPEC92[name].fp_fraction == 0.0

    def test_fp_benchmarks_have_fp(self):
        for name in FP_BENCHMARKS:
            assert SPEC92[name].fp_fraction > 0.3

    def test_su2cor_uses_conflict_pattern(self):
        pattern = SPEC92["su2cor"].pattern_factory()
        # Walk it against the in-order L1 geometry: high conflict rate.
        cache = Cache(CacheConfig(size=8 * 1024, assoc=1, line_size=32))
        misses = 0
        for _ in range(1000):
            addr = pattern.next_address()
            if not cache.probe(addr):
                misses += 1
                cache.fill(addr)
        assert misses > 400
