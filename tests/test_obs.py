"""Unit tests for the repro.obs observability layer.

Covers the event taxonomy, the metrics registry, Observer hook
behaviour (trace vs metrics-only, handler-run tracking, conflict heat,
MSHR high-water timeline, reset), environment gating, and both trace
exporters (JSONL round-trip, Chrome ``trace_event`` schema).
"""

import json
import os

import pytest

from repro.obs import (
    ENV_DIR,
    ENV_VAR,
    EVENT_KINDS,
    Observer,
    chrome_trace,
    job_trace_path,
    make_event,
    maybe_observer,
    obs_enabled,
    obs_trace_dir,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_run_artifacts,
)
from repro.obs import events as ev
from repro.obs.metrics import Counter, Histogram, Registry, top_n


class _FakeEntry:
    def __init__(self, mshr_id=0, line_addr=0, merged=0):
        self.mshr_id = mshr_id
        self.line_addr = line_addr
        self.merged = merged


class _FakeCache:
    def __init__(self, name="L1"):
        self.name = name


class _FakeVictim:
    def __init__(self, line_addr, dirty):
        self.line_addr = line_addr
        self.dirty = dirty


class _FakeInst:
    def __init__(self, pc=0x100, addr=0x2000):
        self.pc = pc
        self.addr = addr


class TestEventTaxonomy:
    def test_every_kind_constant_is_documented(self):
        kinds = {getattr(ev, name) for name in dir(ev)
                 if name.isupper() and name != "EVENT_KINDS"
                 and isinstance(getattr(ev, name), str)}
        assert kinds == set(EVENT_KINDS)

    def test_make_event(self):
        event = make_event(7, ev.L1_HIT, line=3, write=True)
        assert event == {"cycle": 7, "kind": "l1.hit",
                        "line": 3, "write": True}


class TestMetrics:
    def test_counter(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_histogram_power_of_two_buckets(self):
        h = Histogram("lat")
        for value in (0, 1, 2, 3, 4, 7, 8, 100):
            h.record(value)
        assert h.buckets == {0: 1, 1: 1, 2: 2, 4: 2, 8: 1, 64: 1}
        assert h.count == 8
        assert h.total == 125
        assert h.min == 0 and h.max == 100
        assert h.mean == pytest.approx(125 / 8)

    def test_histogram_empty(self):
        h = Histogram("lat")
        assert h.mean == 0.0
        assert h.render() == ["  (empty)"]
        assert h.to_dict()["count"] == 0

    def test_histogram_render_and_dict(self):
        h = Histogram("lat")
        for _ in range(4):
            h.record(10)
        h.record(1)
        rows = h.render(width=8)
        assert any("[     8,    16) ######## 4" in row for row in rows)
        data = h.to_dict()
        assert data["buckets"] == {"1": 1, "8": 4}
        assert json.dumps(data)  # JSON-able with no conversion

    def test_registry_create_on_first_use(self):
        r = Registry()
        r.counter("a").inc()
        assert r.counter("a").value == 1
        r.histogram("h").record(2)
        assert r.counters() == {"a": 1}
        data = r.to_dict()
        assert data["counters"] == {"a": 1}
        assert data["histograms"]["h"]["count"] == 1

    def test_top_n_orders_by_count_then_key(self):
        heat = {0: 3, 1: 9, 2: 3, 3: 1}
        assert top_n(heat, 3) == [(1, 9), (0, 3), (2, 3)]


class TestObserverHooks:
    def test_metrics_only_mode_records_no_events(self):
        obs = Observer(trace=False)
        obs.on_access(5)
        obs.on_l1_hit(3, False)
        obs.on_l1_miss(4, 2, 5, 17, 0)
        assert obs.events == []
        assert obs.counts() == {"accesses": 1, "l1.hit": 1, "l1.miss": 1,
                                "l2.hit": 1}

    def test_miss_levels_and_latency(self):
        obs = Observer()
        obs.on_access(10)
        obs.on_l1_miss(1, 2, 10, 22, 0)
        obs.on_access(11)
        obs.on_l1_miss(2, 3, 11, 86, 1)
        counts = obs.counts()
        assert counts["l2.hit"] == 1 and counts["l2.miss"] == 1
        lat = obs.metrics.histogram("miss_latency")
        assert lat.min == 12 and lat.max == 75
        assert [e["kind"] for e in obs.events] == [ev.L1_MISS, ev.L1_MISS]

    def test_stream_buffer_counts_as_hit_or_miss(self):
        obs = Observer()
        obs.on_stream_buffer(7, arrived=True)
        obs.on_stream_buffer(8, arrived=False)
        assert obs.counts() == {"l1.hit": 1, "l1.miss": 1}
        assert all(e["via"] == "stream" for e in obs.events)

    def test_cache_fill_evict_and_conflict_heat(self):
        obs = Observer()
        cache = _FakeCache("L1")
        obs.cycle = 30
        obs.on_cache_fill(cache, 2, 0x40, None)
        obs.on_cache_fill(cache, 2, 0x42, _FakeVictim(0x40, dirty=True))
        obs.on_cache_invalidate(cache, 2, 0x42)
        assert obs.conflict_heat == {"L1": {2: 1}}
        kinds = [e["kind"] for e in obs.events]
        assert kinds == [ev.CACHE_FILL, ev.CACHE_FILL, ev.CACHE_EVICT,
                         ev.CACHE_INVAL]
        evict = obs.events[2]
        assert evict["dirty"] is True and evict["line"] == 0x40

    def test_mshr_high_water_timeline(self):
        obs = Observer()
        obs.cycle = 1
        obs.on_mshr_alloc(_FakeEntry(0), 1)
        obs.cycle = 2
        obs.on_mshr_alloc(_FakeEntry(1), 2)
        obs.cycle = 3
        obs.on_mshr_fill(_FakeEntry(0), 2)
        obs.on_mshr_alloc(_FakeEntry(2), 2)   # not a new high water
        obs.cycle = 9
        obs.on_mshr_alloc(_FakeEntry(3), 3)
        assert obs.mshr_timeline == [(1, 1), (2, 2), (9, 3)]

    def test_mshr_merge_and_squashed_release(self):
        obs = Observer()
        obs.on_mshr_merge(_FakeEntry(0, merged=2))
        obs.on_mshr_release(_FakeEntry(0), squashed=True, occupancy=0)
        obs.on_mshr_release(_FakeEntry(1), squashed=False, occupancy=0)
        counts = obs.counts()
        assert counts["mshr.merge"] == 1
        assert counts["mshr.release"] == 2
        assert counts["mshr.squashed"] == 1

    def test_handler_run_open_close(self):
        obs = Observer()
        obs.on_trap_fire(_FakeInst(), 10)
        obs.on_handler_commit(100)
        obs.on_handler_commit(101)
        obs.on_handler_commit(102)
        obs.on_app_commit(103)
        assert obs.counts()[ev.TRAP_FIRE] == 1
        assert obs.counts()[ev.TRAP_RETURN] == 1
        ret = [e for e in obs.events if e["kind"] == ev.TRAP_RETURN][0]
        assert ret == {"cycle": 103, "kind": ev.TRAP_RETURN,
                       "start": 100, "committed": 3}

    def test_finish_closes_open_handler_run(self):
        obs = Observer()
        obs.on_handler_commit(50)
        obs.finish()
        assert obs.counts()[ev.TRAP_RETURN] == 1
        assert obs.metrics.histogram("handler_committed").count == 1

    def test_app_commit_without_handler_is_quiet(self):
        obs = Observer()
        obs.on_app_commit(5)
        obs.finish()
        assert ev.TRAP_RETURN not in obs.counts()

    def test_slots_are_metrics_only(self):
        obs = Observer()
        obs.on_slots(1, busy=3, lost=1, cache_blame=True)
        obs.on_slots(2, busy=0, lost=4, cache_blame=False)
        counts = obs.counts()
        assert counts["slots.cycles"] == 2
        assert counts["slots.busy"] == 3
        assert counts["slots.cache_stall"] == 1
        assert counts["slots.other_stall"] == 4
        assert obs.events == []

    def test_reset_drops_everything(self):
        obs = Observer()
        obs.on_access(4)
        obs.on_l1_hit(1, False)
        obs.on_cache_fill(_FakeCache(), 0, 1, _FakeVictim(0, False))
        obs.on_mshr_alloc(_FakeEntry(), 1)
        obs.on_handler_commit(4)
        obs.reset()
        assert obs.events == []
        assert obs.counts() == {}
        assert obs.conflict_heat == {}
        assert obs.mshr_timeline == []
        obs.finish()                    # open handler run was dropped too
        assert obs.counts() == {}


class TestEnvironmentGating:
    def _clear(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        monkeypatch.delenv(ENV_DIR, raising=False)

    def test_off_by_default(self, monkeypatch):
        self._clear(monkeypatch)
        assert not obs_enabled()
        assert obs_trace_dir() is None
        assert maybe_observer() is None

    def test_env_var_enables_metrics_only(self, monkeypatch):
        self._clear(monkeypatch)
        monkeypatch.setenv(ENV_VAR, "1")
        assert obs_enabled()
        obs = maybe_observer()
        assert obs is not None and obs.trace is False

    def test_trace_dir_implies_enabled_and_tracing(self, monkeypatch):
        self._clear(monkeypatch)
        monkeypatch.setenv(ENV_DIR, "/tmp/traces")
        assert obs_enabled()
        assert obs_trace_dir() == "/tmp/traces"
        obs = maybe_observer()
        assert obs is not None and obs.trace is True

    def test_explicit_overrides_environment(self, monkeypatch):
        self._clear(monkeypatch)
        monkeypatch.setenv(ENV_VAR, "1")
        assert maybe_observer(False) is None
        self._clear(monkeypatch)
        obs = maybe_observer(True)
        assert obs is not None and obs.trace is True

    def test_job_trace_path_flattens_label(self):
        assert job_trace_path("/tmp/t", "compress/ooo/S10") == \
            "/tmp/t/compress_ooo_S10.events.jsonl"


def _sample_events():
    return [
        make_event(10, ev.L1_HIT, line=1, write=False),
        make_event(11, ev.L1_MISS, line=2, level=3, start=11, ready=86,
                   mshr=0),
        make_event(12, ev.MSHR_ALLOC, mshr=0, line=2, occupancy=1),
        make_event(90, ev.TRAP_FIRE, pc=0x40, addr=0x800, handler_len=10),
        make_event(99, ev.TRAP_RETURN, start=91, committed=10),
    ]


class TestExporters:
    def test_jsonl_round_trip(self, tmp_path):
        events = _sample_events()
        path = str(tmp_path / "t.events.jsonl")
        assert write_jsonl(events, path) == path
        assert read_jsonl(path) == events

    def test_chrome_trace_schema(self):
        events = _sample_events()
        trace = chrome_trace(events, process_name="unit")
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        records = trace["traceEvents"]
        meta = [r for r in records if r["ph"] == "M"]
        assert meta[0]["args"]["name"] == "unit"
        lane_names = {r["args"]["name"] for r in meta[1:]}
        assert {"L1 accesses", "tag stores", "MSHRs", "informing",
                "other"} == lane_names
        payload = [r for r in records if r["ph"] != "M"]
        assert len(payload) == len(events)
        for record in payload:
            assert record["ph"] in ("i", "X")
            assert isinstance(record["ts"], int)
            if record["ph"] == "X":
                assert record["dur"] >= 1
            else:
                assert record["s"] == "t"
        # The miss spans start..ready; the trap.return spans its run.
        miss = next(r for r in payload if r["name"] == ev.L1_MISS)
        assert (miss["ts"], miss["dur"]) == (11, 75)
        ret = next(r for r in payload if r["name"] == ev.TRAP_RETURN)
        assert (ret["ts"], ret["dur"]) == (91, 8)
        json.dumps(trace)

    def test_write_chrome_trace(self, tmp_path):
        path = str(tmp_path / "trace.json")
        write_chrome_trace(_sample_events(), path)
        with open(path) as fh:
            assert "traceEvents" in json.load(fh)

    def test_write_run_artifacts(self, tmp_path):
        obs = Observer(trace=True)
        obs.on_access(3)
        obs.on_l1_hit(1, False)
        obs.on_cache_fill(_FakeCache("L2"), 1, 5, _FakeVictim(9, False))
        obs.cycle = 4
        obs.on_mshr_alloc(_FakeEntry(), 1)
        directory = str(tmp_path / "runs")
        paths = write_run_artifacts(obs, directory, "bench_ooo_N")
        assert os.path.exists(paths["events"])
        assert read_jsonl(paths["events"]) == obs.events
        with open(paths["metrics"]) as fh:
            payload = json.load(fh)
        assert payload["stem"] == "bench_ooo_N"
        assert payload["events"] == len(obs.events)
        assert payload["metrics"]["counters"]["l1.hit"] == 1
        assert payload["conflict_heat"] == {"L2": {"1": 1}}
        assert payload["mshr_timeline"] == [[4, 1]]

    def test_write_run_artifacts_metrics_only(self, tmp_path):
        obs = Observer(trace=False)
        obs.on_l1_hit(1, False)
        paths = write_run_artifacts(obs, str(tmp_path), "x")
        assert "events" not in paths
        assert os.path.exists(paths["metrics"])
