"""Unit and integration tests for the §4.3 multiprocessor simulation."""

import pytest

from repro.coherence import (
    AccessControlMethod,
    CoherenceMachineParams,
    MultiprocessorSim,
    run_access_control_experiment,
)
from repro.workloads.parallel import BARRIER, MemRef, PARALLEL_KERNELS

SMALL = CoherenceMachineParams(processors=4)


def simple_kernel(reads=10, writes=2):
    """Everyone reads a small shared table; proc 0 writes a block."""
    def factory(proc, nprocs):
        for it in range(4):
            for b in range(reads):
                yield MemRef(1, 0x100000 + b * 32, False, True)
            if proc == 0:
                for w in range(writes):
                    yield MemRef(1, 0x100000 + w * 32, True, True)
            yield BARRIER
    return factory


class TestSimulationBasics:
    def test_all_processors_finish(self):
        result = run_access_control_experiment(
            simple_kernel(), AccessControlMethod.INFORMING, SMALL)
        assert result.execution_time > 0
        assert len(result.processors) == 4
        assert all(p.references > 0 for p in result.processors)

    def test_private_refs_skip_access_control(self):
        def private_only(proc, nprocs):
            for i in range(50):
                yield MemRef(1, 0x1000000 + proc * 0x100000 + 4 * i,
                             False, False)

        for method in AccessControlMethod:
            result = run_access_control_experiment(private_only, method, SMALL)
            assert result.total.access_control_cycles == 0
            assert result.total.shared_references == 0

    def test_barrier_synchronises(self):
        # One slow processor: everyone's phase ends together.
        def skewed(proc, nprocs):
            yield MemRef(1000 if proc == 0 else 1, 0x100000, False, True)
            yield BARRIER
            yield MemRef(1, 0x100020, False, True)

        result = run_access_control_experiment(
            skewed, AccessControlMethod.INFORMING, SMALL)
        assert result.execution_time > 1000

    def test_deterministic(self):
        a = run_access_control_experiment(
            simple_kernel(), AccessControlMethod.ECC, SMALL)
        b = run_access_control_experiment(
            simple_kernel(), AccessControlMethod.ECC, SMALL)
        assert a.execution_time == b.execution_time


class TestMethodSemantics:
    def test_reference_checking_pays_on_every_shared_ref(self):
        result = run_access_control_experiment(
            simple_kernel(), AccessControlMethod.REFERENCE_CHECKING, SMALL)
        total = result.total
        assert total.access_control_cycles >= 18 * total.shared_references

    def test_informing_pays_only_on_misses(self):
        result = run_access_control_experiment(
            simple_kernel(), AccessControlMethod.INFORMING, SMALL)
        total = result.total
        assert total.handler_invocations < total.shared_references
        assert total.handler_invocations >= total.l1_misses * 0  # defined
        # Lookup charged per invocation (plus state changes).
        assert total.access_control_cycles >= 33 * total.handler_invocations

    def test_ecc_faults_on_invalid_reads(self):
        result = run_access_control_experiment(
            simple_kernel(), AccessControlMethod.ECC, SMALL)
        assert result.total.faults > 0

    def test_ecc_spurious_write_faults(self):
        """Writes to a READWRITE block still fault when the page holds
        READONLY data — Blizzard-E's page-granularity cost."""
        def kernel(proc, nprocs):
            if proc == 0:
                # Own block 0 READWRITE; others make block 1 (same page)
                # READONLY at proc 0?  No — make proc 0 read block 1 so
                # *its own* page has READONLY data, then write block 0.
                yield MemRef(1, 0x100020, False, True)   # block 1 READONLY
                yield MemRef(1, 0x100000, True, True)    # upgrade block 0
                for _ in range(5):
                    yield MemRef(1, 0x100000, True, True)  # spurious faults
            yield BARRIER

        result = run_access_control_experiment(
            kernel, AccessControlMethod.ECC, SMALL)
        assert result.processors[0].faults >= 6

    def test_invalidation_forces_informing_recheck(self):
        """After a remote write, the reader's next access misses and runs
        the handler — the Section 3.3 guarantee."""
        def kernel(proc, nprocs):
            if proc == 0:
                yield MemRef(1, 0x100000, False, True)   # read: READONLY
                yield BARRIER
                yield BARRIER
                yield MemRef(1, 0x100000, False, True)   # must re-check
            elif proc == 1:
                yield BARRIER
                yield MemRef(1, 0x100000, True, True)    # invalidate proc 0
                yield BARRIER
            else:
                yield BARRIER
                yield BARRIER

        result = run_access_control_experiment(
            kernel, AccessControlMethod.INFORMING, SMALL)
        # proc 0: cold read handler + re-check handler.
        assert result.processors[0].handler_invocations == 2
        assert result.remote_invalidations == 1

    def test_protocol_charges_message_latency(self):
        result = run_access_control_experiment(
            simple_kernel(), AccessControlMethod.INFORMING, SMALL)
        assert result.total.protocol_cycles >= 1800  # at least one 2-hop op


class TestFigure4Shape:
    @pytest.mark.parametrize("workload", sorted(PARALLEL_KERNELS))
    def test_informing_fastest_on_every_kernel(self, workload):
        kernel = PARALLEL_KERNELS[workload]
        times = {
            method: run_access_control_experiment(
                kernel, method, CoherenceMachineParams(processors=8),
                name=workload).execution_time
            for method in AccessControlMethod
        }
        informing = times[AccessControlMethod.INFORMING]
        assert informing <= times[AccessControlMethod.REFERENCE_CHECKING]
        assert informing <= times[AccessControlMethod.ECC]
