"""Additional out-of-order core coverage: renaming, ROB, graduation."""

import pytest

from repro.isa import OpClass, alu, branch, load, store
from repro.isa.instructions import DynInst
from tests.helpers import make_inorder, make_ooo, small_hierarchy, trap_config


class TestRenaming:
    def test_false_dependences_removed(self):
        """WAW/WAR on one register do not serialise an OoO machine."""
        # Every op writes r1 but reads nothing: fully parallel after rename.
        trace = [alu(dest=1, pc=0x1000 + 4 * i) for i in range(200)]
        ooo = make_ooo().run(list(trace))
        assert ooo.ipc > 1.7  # 2 int units

    def test_true_dependences_respected(self):
        trace = [alu(dest=1, srcs=(1,), pc=0x1000 + 4 * i)
                 for i in range(200)]
        stats = make_ooo().run(trace)
        assert stats.ipc <= 1.05

    def test_loads_feed_consumers_out_of_order(self):
        """A late miss does not block independent younger work."""
        trace = [load(0x40000, dest=2, pc=0x1000)]           # long miss
        trace += [alu(dest=4 + (i % 8), pc=0x2000 + 4 * i)   # independent
                  for i in range(24)]
        trace += [alu(dest=3, srcs=(2,), pc=0x3000)]          # dependent
        stats = make_ooo().run(trace)
        # The 24 independent ops fit inside the ~75-cycle miss shadow.
        assert stats.cycles < 75 + 40


class TestGraduation:
    def test_in_order_graduation_blocks_on_head(self):
        """Younger completed work cannot graduate past a missing head."""
        trace = [load(0x40000, dest=2, pc=0x1000)]
        trace += [alu(dest=4, pc=0x2000 + 4 * i) for i in range(8)]
        stats = make_ooo().run(trace)
        # All 9 instructions graduate only after the miss returns.
        assert stats.cycles >= 75

    def test_graduation_width_bounds_ipc(self):
        trace = []
        for i in range(100):
            for k in range(6):
                trace.append(alu(dest=1 + k, pc=0x1000 + 4 * (6 * i + k)))
        stats = make_ooo(int_units=6, issue_width=4).run(trace)
        assert stats.ipc <= 4.0


class TestStores:
    def test_store_data_dependence(self):
        """A store's data register dependence delays its issue, not its
        graduation semantics."""
        trace = [DynInst(OpClass.IDIV, dest=9, srcs=(1,), pc=0x1000),
                 store(0x100, srcs=(9,), pc=0x1004),
                 alu(dest=2, pc=0x1008)]
        stats = make_ooo().run(trace)
        assert stats.cycles >= 76  # waits for the divide

    def test_write_allocate_fetches_line(self):
        hierarchy = small_hierarchy()
        core = make_ooo(hierarchy=hierarchy)
        core.run([store(0x40000, pc=0x1000)])
        hierarchy.drain()
        assert hierarchy.l1.contains(0x40000)
        assert hierarchy.l1.is_dirty(0x40000)


class TestTrapEdgeCases:
    def test_trap_on_final_instruction(self):
        """An informing miss on the last instruction still runs its handler."""
        core = make_ooo(informing=trap_config(n=3))
        stats = core.run([load(0x40000, dest=2, pc=0x1000)])
        assert core.engine.invocations == 1
        assert stats.handler_instructions == 4

    def test_exception_style_trap_on_final_instruction(self):
        from repro.core import TrapStyle
        core = make_ooo(informing=trap_config(n=3,
                                              style=TrapStyle.EXCEPTION_LIKE))
        stats = core.run([load(0x40000, dest=2, pc=0x1000)])
        assert core.engine.invocations == 1

    def test_back_to_back_informing_misses(self):
        core = make_ooo(informing=trap_config(n=1))
        trace = [load(0x40000 + 64 * i, dest=2, pc=0x1000 + 4 * i)
                 for i in range(6)]
        stats = core.run(trace)
        assert core.engine.invocations == 6
        assert stats.app_instructions == 6

    def test_store_misses_trap_too(self):
        """Section 3.1: the replay trap occurs for loads *and* stores."""
        core = make_ooo(informing=trap_config(n=1))
        trace = [store(0x40000 + 64 * i, pc=0x1000 + 4 * i)
                 for i in range(5)]
        core.run(trace)
        assert core.engine.invocations == 5

    def test_inorder_store_misses_trap_too(self):
        core = make_inorder(informing=trap_config(n=1))
        trace = [store(0x40000 + 64 * i, pc=0x1000 + 4 * i)
                 for i in range(5)]
        core.run(trace)
        assert core.engine.invocations == 5

    def test_handler_miss_does_not_recurse(self):
        """A coherence-style handler that itself loads (and misses) must
        not re-trap — handler code runs with the MHAR disabled."""
        from repro.core import CallbackHandler, InformingConfig, Mechanism
        from repro.isa.instructions import DynInst as DI

        def handler_body(ref):
            inner = DI(OpClass.LOAD, dest=26, addr=0x90000, pc=0x8000,
                       informing=False, handler_code=True)
            return [inner]

        config = InformingConfig(
            mechanism=Mechanism.TRAP, handler=CallbackHandler(handler_body))
        core = make_ooo(informing=config)
        core.run([load(0x40000, dest=2, pc=0x1000)])
        assert core.engine.invocations == 1  # no recursion

    def test_trap_handler_stream_interleave_under_pressure(self):
        """Dense misses with a long handler still preserve program order."""
        core = make_ooo(informing=trap_config(n=10))
        trace = []
        for i in range(30):
            trace.append(load(0x40000 + 64 * i, dest=2, pc=0x1000 + 8 * i))
            trace.append(alu(dest=3, srcs=(2,), pc=0x1004 + 8 * i))
        stats = core.run(trace)
        assert stats.app_instructions == 60


class TestShadowStateEdge:
    def test_shadow_slots_cap_inflight_branches(self):
        # With 1 shadow slot, a second branch cannot be fetched until the
        # first resolves; with 8 slots fetch runs ahead.
        trace = []
        for i in range(200):
            trace.append(branch(False, pc=0x1000 + 8 * i))
            trace.append(alu(dest=1 + (i % 4), pc=0x1004 + 8 * i))
        tight = make_ooo(shadow_branches=1).run(list(trace))
        loose = make_ooo(shadow_branches=8).run(list(trace))
        assert loose.cycles < tight.cycles
