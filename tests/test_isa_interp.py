"""Unit tests for the functional interpreter."""

import pytest

from repro.isa import Interpreter, OpClass, TraceLimitExceeded, assemble
from repro.isa.registers import REG_ZERO, int_reg


def run(text, memory=None, max_insts=100_000):
    interp = Interpreter(assemble(text), memory=memory)
    trace = interp.trace(max_insts)
    return interp, trace


class TestArithmetic:
    def test_li_add_sub(self):
        interp, trace = run("li r1, 7\nli r2, 5\nadd r3, r1, r2\nsub r4, r3, r2\nhalt")
        assert interp.regs[int_reg(3)] == 12
        assert interp.regs[int_reg(4)] == 7
        assert all(i.op is OpClass.IALU for i in trace)

    def test_logic_and_shift(self):
        interp, _ = run(
            "li r1, 12\nli r2, 10\nand r3, r1, r2\nor r4, r1, r2\n"
            "xor r5, r1, r2\nsll r6, r1, 2\nsrl r7, r1, 2\nslt r8, r2, r1\nhalt"
        )
        regs = interp.regs
        assert regs[int_reg(3)] == 8
        assert regs[int_reg(4)] == 14
        assert regs[int_reg(5)] == 6
        assert regs[int_reg(6)] == 48
        assert regs[int_reg(7)] == 3
        assert regs[int_reg(8)] == 1

    def test_mul_div_opclasses(self):
        interp, trace = run("li r1, 6\nli r2, 4\nmul r3, r1, r2\ndiv r4, r3, r2\nhalt")
        assert interp.regs[int_reg(3)] == 24
        assert interp.regs[int_reg(4)] == 6
        assert trace[2].op is OpClass.IMUL
        assert trace[3].op is OpClass.IDIV

    def test_divide_by_zero_yields_zero(self):
        interp, _ = run("li r1, 5\ndiv r2, r1, r0\nhalt")
        assert interp.regs[int_reg(2)] == 0

    def test_fp_ops(self):
        interp, trace = run(
            "li r1, 9\nst r1, 0(r0)\nld f1, 0(r0)\n"
            "fadd f2, f1, f1\nfmul f3, f2, f1\nfdiv f4, f3, f1\nfsqrt f5, f1\nhalt"
        )
        from repro.isa.registers import fp_reg
        assert interp.regs[fp_reg(2)] == 18
        assert interp.regs[fp_reg(3)] == 162
        assert interp.regs[fp_reg(4)] == 18
        assert interp.regs[fp_reg(5)] == 3
        assert trace[-1].op is OpClass.FSQRT
        assert trace[-2].op is OpClass.FDIV

    def test_zero_register_is_immutable(self):
        interp, _ = run("li r0, 42\nadd r1, r0, r0\nhalt")
        assert interp.regs[REG_ZERO] == 0
        assert interp.regs[int_reg(1)] == 0


class TestMemory:
    def test_store_load_roundtrip(self):
        interp, trace = run("li r1, 0x100\nli r2, 99\nst r2, 8(r1)\nld r3, 8(r1)\nhalt")
        assert interp.regs[int_reg(3)] == 99
        assert trace[2].addr == 0x108
        assert trace[3].addr == 0x108

    def test_initial_memory_image(self):
        _, trace = run("li r1, 0x40\nld r2, 0(r1)\nhalt", memory={0x40: 7})
        assert trace[-1].op is OpClass.LOAD

    def test_uninitialised_memory_reads_zero(self):
        interp, _ = run("ld r1, 0x500(r0)\nhalt")
        assert interp.regs[int_reg(1)] == 0

    def test_prefetch_emits_nonbinding_op(self):
        _, trace = run("li r1, 0x80\nprefetch 4(r1)\nhalt")
        assert trace[-1].op is OpClass.PREFETCH
        assert trace[-1].addr == 0x84
        assert not trace[-1].informing


class TestControlFlow:
    def test_loop_executes_n_times(self):
        interp, trace = run(
            """
            li r1, 0
            li r2, 5
            loop:
                addi r1, r1, 1
                bne r1, r2, loop
            halt
            """
        )
        assert interp.regs[int_reg(1)] == 5
        branches = [i for i in trace if i.op is OpClass.BRANCH]
        assert len(branches) == 5
        assert [b.taken for b in branches] == [True] * 4 + [False]

    def test_branch_variants(self):
        interp, _ = run(
            """
            li r1, 3
            li r2, 3
            beq r1, r2, eq
            li r9, 111
            eq:
            blt r1, r2, never
            bge r1, r2, done
            li r9, 222
            never:
            li r9, 333
            done:
            halt
            """
        )
        assert interp.regs[int_reg(9)] == 0

    def test_jump(self):
        interp, trace = run("j skip\nskip:\nli r1, 1\nhalt")
        assert interp.regs[int_reg(1)] == 1
        assert trace[0].op is OpClass.JUMP

    def test_infinite_loop_raises(self):
        with pytest.raises(TraceLimitExceeded):
            run("loop:\nj loop\nhalt", max_insts=100)

    def test_pcs_are_distinct_per_static_instruction(self):
        _, trace = run("li r1, 1\nli r2, 2\nhalt")
        assert trace[0].pc != trace[1].pc

    def test_falling_off_the_end_terminates(self):
        _, trace = run("li r1, 1")
        assert len(trace) == 1
