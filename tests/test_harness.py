"""Integration tests for the experiment harness (small run sizes)."""

import pytest

from repro.harness import ALPHA21164_SPEC, MACHINES, R10000_SPEC, build_core
from repro.harness.coherence_exp import (
    Figure4Result,
    figure4,
    render_figure4,
    sensitivity,
)
from repro.harness.runner import (
    bar_config,
    run_bar,
    run_figure,
)
from repro.harness.report import render_bar_chart, render_figure, summarize_claims
from repro.coherence import CoherenceMachineParams
from repro.core import Mechanism, TrapStyle

N, W = 3000, 1000


class TestTable1Configs:
    """Every Table 1 cell, asserted."""

    def test_out_of_order_pipeline(self):
        core = R10000_SPEC.core
        assert core.issue_width == 4
        assert (core.int_units, core.fp_units, core.branch_units,
                core.mem_units) == (2, 2, 1, 1)
        assert core.rob_size == 32
        assert core.latencies.imul == 12
        assert core.latencies.idiv == 76
        assert core.latencies.fdiv == 15
        assert core.latencies.fsqrt == 20
        assert core.latencies.fp_other == 2

    def test_in_order_pipeline(self):
        core = ALPHA21164_SPEC.core
        assert core.issue_width == 4
        assert (core.int_units, core.fp_units, core.branch_units,
                core.mem_units) == (2, 2, 1, 0)
        assert core.latencies.fdiv == 17
        assert core.latencies.fp_other == 4

    def test_out_of_order_memory(self):
        mem = R10000_SPEC.hierarchy
        assert (mem.l1.size, mem.l1.assoc) == (32 * 1024, 2)
        assert (mem.l2.size, mem.l2.assoc) == (2 * 1024 * 1024, 2)
        assert mem.l1.line_size == 32
        assert mem.l1_to_l2_latency == 12
        assert mem.l1_to_mem_latency == 75
        assert mem.mshr_count == 8
        assert mem.data_banks == 2
        assert mem.fill_time == 4
        assert mem.mem_cycles_per_access == 20

    def test_in_order_memory(self):
        mem = ALPHA21164_SPEC.hierarchy
        assert (mem.l1.size, mem.l1.assoc) == (8 * 1024, 1)
        assert (mem.l2.size, mem.l2.assoc) == (2 * 1024 * 1024, 4)
        assert mem.l1_to_l2_latency == 11
        assert mem.l1_to_mem_latency == 50

    def test_icache_matches_dcache_geometry(self):
        assert R10000_SPEC.icache.size == 32 * 1024
        assert ALPHA21164_SPEC.icache.size == 8 * 1024


class TestBarConfigs:
    def test_baseline(self):
        assert bar_config("N").informing is None

    def test_single_trap(self):
        bar = bar_config("S10")
        assert bar.informing.mechanism is Mechanism.TRAP
        assert bar.informing.handler.length == 10
        assert not bar.informing.unique_handlers
        assert bar.per_ref_instrumentation is None

    def test_unique_trap(self):
        bar = bar_config("U1")
        assert bar.informing.unique_handlers
        assert bar.per_ref_instrumentation == "mhar"

    def test_exception_style(self):
        bar = bar_config("E10")
        assert bar.informing.trap_style is TrapStyle.EXCEPTION_LIKE

    def test_condition_code(self):
        bar = bar_config("CC1")
        assert bar.informing.mechanism is Mechanism.CONDITION_CODE
        assert bar.per_ref_instrumentation == "cc"

    def test_hundred(self):
        assert bar_config("S100").informing.handler.length == 100

    def test_unknown(self):
        with pytest.raises(ValueError):
            bar_config("Z3")

    @pytest.mark.parametrize("label", [
        "S", "U", "E", "CC",        # missing handler length
        "Ux", "S1x", "CCx", "CC1x",  # non-decimal handler length
        "", "n", "NN", "10", "S-1",  # junk
    ])
    def test_malformed_labels_raise_descriptive_error(self, label):
        with pytest.raises(ValueError, match="unknown bar label"):
            bar_config(label)


class TestRunners:
    def test_run_bar_produces_result(self):
        result = run_bar("espresso", "ooo", bar_config("S1"), N, W)
        assert result.cycles > 0
        # Commit is up to 4-wide, so the budget may overshoot by < width.
        assert N <= result.app_instructions < N + 4
        assert 0.99 <= result.busy + result.cache_stall + result.other_stall <= 1.01

    def test_figure_normalization(self):
        figure = run_figure("mini", ["espresso"], ["ooo"], ["N", "S1"], N, W)
        baseline = figure.get("espresso", "ooo", "N")
        informed = figure.get("espresso", "ooo", "S1")
        assert baseline.normalized == pytest.approx(1.0)
        assert informed.normalized == pytest.approx(
            informed.cycles / baseline.cycles)

    def test_missing_bar_raises(self):
        figure = run_figure("mini", ["espresso"], ["ooo"], ["N"], N, W)
        with pytest.raises(KeyError):
            figure.get("espresso", "inorder", "N")

    def test_overhead_ordering_s1_le_s10(self):
        figure = run_figure("mini", ["compress"], ["inorder"],
                            ["N", "S1", "S10"], N, W)
        s1 = figure.get("compress", "inorder", "S1").normalized
        s10 = figure.get("compress", "inorder", "S10").normalized
        assert 1.0 <= s1 <= s10

    def test_build_core_kinds(self):
        from repro.inorder import InOrderCore
        from repro.ooo import OutOfOrderCore
        assert isinstance(build_core(MACHINES["ooo"]), OutOfOrderCore)
        assert isinstance(build_core(MACHINES["inorder"]), InOrderCore)

    def test_build_core_raises_shadow_for_branch_like_informing(self):
        from repro.harness.configs import INFORMING_SHADOW_SLOTS
        bar = bar_config("S1")
        core = build_core(MACHINES["ooo"], informing=bar.informing)
        assert core.config.shadow_branches == INFORMING_SHADOW_SLOTS
        base = build_core(MACHINES["ooo"])
        assert base.config.shadow_branches == 4

    def test_shadow_override(self):
        bar = bar_config("S1")
        core = build_core(MACHINES["ooo"], informing=bar.informing,
                          shadow_override=3)
        assert core.config.shadow_branches == 3


class TestReportRendering:
    def figure(self):
        return run_figure("mini", ["espresso"], ["ooo"], ["N", "S1"], N, W)

    def test_render_figure(self):
        text = render_figure(self.figure(), "title")
        assert "espresso" in text
        assert "S1" in text

    def test_render_bar_chart(self):
        text = render_bar_chart(self.figure(), "ooo", "S1")
        assert "espresso" in text
        assert "#" in text

    def test_summarize_claims(self):
        notes = summarize_claims(self.figure())
        assert notes


class TestCoherenceHarness:
    def small_machine(self):
        return CoherenceMachineParams(processors=4)

    def test_figure4_rows(self):
        result = figure4(self.small_machine(),
                         workloads=["read_mostly", "mixed"])
        assert len(result.rows) == 2
        for row in result.rows:
            assert row.reference_checking >= 0.95
            assert row.ecc >= 0.95
        assert result.mean_ecc > 0

    def test_render_figure4(self):
        result = figure4(self.small_machine(), workloads=["read_mostly"])
        text = render_figure4(result)
        assert "read_mostly" in text
        assert "mean" in text

    def test_sensitivity_latency_trend(self):
        points = sensitivity(workloads=["read_mostly"],
                             message_latencies=(100, 1800),
                             l1_sizes=())
        # Smaller network latency -> informing relatively better (larger
        # comparator ratios).
        by_latency = {p.message_latency: p for p in points}
        assert (by_latency[100].reference_checking
                >= by_latency[1800].reference_checking)


class TestCLI:
    def test_table_commands(self, capsys):
        from repro.harness.__main__ import main
        assert main(["table1"]) == 0
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "issue width" in out
        assert "message latency" in out
