"""The invariant catalog: unit checks, attachment, and golden parity
with the sanitizer enabled."""

import pickle

import pytest

from tests.helpers import make_inorder, make_ooo, small_hierarchy, trap_config
from repro.core.mechanisms import INSTRUCTION_BYTES, return_pc
from repro.sanitize import (
    CAUGHT_BY,
    DEFAULT_EVERY,
    INVARIANTS,
    InvariantViolation,
    Sanitizer,
    maybe_sanitizer,
    sanitize_enabled,
)
from tests.test_golden_parity import (
    COMPARED_FIELDS,
    QUICK_INSTRUCTIONS,
    QUICK_WARMUP,
    _golden_index,
)


def attached(hierarchy=None, every=1):
    hierarchy = hierarchy or small_hierarchy()
    san = Sanitizer(every=every)
    san.attach_hierarchy(hierarchy)
    return san, hierarchy


# -- the violation type ------------------------------------------------------


class TestInvariantViolation:
    def test_message_carries_structure(self):
        exc = InvariantViolation("mshr.drained", "MSHR", 42, "boom",
                                 {"mshr_id": 3})
        assert "mshr.drained" in str(exc)
        assert "cycle 42" in str(exc)
        assert exc.to_dict() == {
            "invariant": "mshr.drained", "component": "MSHR", "cycle": 42,
            "message": "boom", "snapshot": {"mshr_id": 3}}

    def test_pickle_round_trip_keeps_fields(self):
        """Violations cross process-pool boundaries; the structured
        fields must survive, not collapse into a bare message string."""
        exc = InvariantViolation("cache.duplicate_line", "L1D", 7, "dup",
                                 {"line": "0x40", "sets": [1, 2]})
        clone = pickle.loads(pickle.dumps(exc))
        assert type(clone) is InvariantViolation
        assert clone.to_dict() == exc.to_dict()
        assert str(clone) == str(exc)


# -- the catalog -------------------------------------------------------------


class TestCatalog:
    def test_every_chaos_fault_maps_to_catalog_entries(self):
        for fault, invariants in CAUGHT_BY.items():
            for name in invariants:
                assert name in INVARIANTS, (fault, name)

    def test_catalog_covers_the_issue_families(self):
        families = {name.split(".")[0] for name in INVARIANTS}
        assert families == {"cache", "mshr", "pipeline", "informing"}

    def test_return_pc_is_the_successor(self):
        assert return_pc(0x1000) == 0x1000 + INSTRUCTION_BYTES


# -- enabling ----------------------------------------------------------------


class TestEnabling:
    def test_env_var_enables(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitize_enabled()
        assert maybe_sanitizer() is None
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_enabled()
        assert isinstance(maybe_sanitizer(), Sanitizer)

    def test_explicit_overrides_env_both_ways(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert maybe_sanitizer(False) is None
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert isinstance(maybe_sanitizer(True), Sanitizer)

    def test_default_is_off(self):
        hierarchy = small_hierarchy()
        assert hierarchy._san is None
        assert hierarchy.l1._san is None
        assert hierarchy.mshrs._san is None

    def test_attach_wires_every_component(self):
        san, hierarchy = attached()
        for component in (hierarchy, hierarchy.l1, hierarchy.l2,
                          hierarchy.mshrs):
            assert component._san is san

    def test_every_must_be_positive(self):
        with pytest.raises(ValueError):
            Sanitizer(every=0)


# -- cache checks ------------------------------------------------------------


class TestCacheChecks:
    def test_clean_cache_passes(self):
        san, hierarchy = attached()
        for addr in range(0, 512, 32):
            hierarchy.l1.fill(addr)
        san.check_cache(hierarchy.l1)

    def test_overfull_set_caught(self):
        san, hierarchy = attached()
        l1 = hierarchy.l1
        # Three residents in a 2-way set, injected behind fill()'s back.
        for way in range(3):
            l1._sets[0][way * (l1._set_mask + 1)] = False
        with pytest.raises(InvariantViolation) as info:
            san.check_cache_set(l1, 0)
        assert info.value.invariant == "cache.set_occupancy"
        assert info.value.component == "L1D"

    def test_foreign_set_resident_caught(self):
        san, hierarchy = attached()
        l1 = hierarchy.l1
        l1._sets[3][0] = False  # line 0 homes to set 0
        with pytest.raises(InvariantViolation) as info:
            san.check_cache_set(l1, 3)
        assert info.value.invariant == "cache.tag_home_set"
        assert info.value.snapshot["home_set"] == 0

    def test_cross_set_duplicate_caught(self):
        """Same line resident in two sets: the home-set check flags the
        foreign copy and the duplicate scan backstops it."""
        san, hierarchy = attached()
        l1 = hierarchy.l1
        line = 1  # homes to set 1
        l1._sets[1][line] = False
        l1._sets[2][line] = False
        with pytest.raises(InvariantViolation) as info:
            san.check_cache(l1)
        assert info.value.invariant in ("cache.duplicate_line",
                                        "cache.tag_home_set")


# -- MSHR checks -------------------------------------------------------------


class TestMSHRChecks:
    def test_clean_file_passes(self):
        san, hierarchy = attached()
        hierarchy.mshrs.allocate(0x10, data_ready=50, is_write=False)
        hierarchy.mshrs.allocate(0x20, data_ready=60, is_write=False)
        san.check_mshr_file(hierarchy.mshrs)

    def test_leaked_entry_caught(self):
        san, hierarchy = attached()
        mshrs = hierarchy.mshrs
        entry = mshrs.allocate(0x10, data_ready=50, is_write=False)
        entry.filled = True  # filled + unpinned but never retired
        with pytest.raises(InvariantViolation) as info:
            san.check_mshr_file(mshrs)
        assert info.value.invariant == "mshr.no_leaked_entries"
        assert info.value.snapshot["mshr_id"] == entry.mshr_id

    def test_duplicate_line_caught(self):
        san, hierarchy = attached()
        mshrs = hierarchy.mshrs
        a = mshrs.allocate(0x10, data_ready=50, is_write=False)
        b = mshrs.allocate(0x20, data_ready=60, is_write=False)
        b.line_addr = a.line_addr  # corrupt: two in-flight for one line
        with pytest.raises(InvariantViolation) as info:
            san.check_mshr_file(mshrs)
        assert info.value.invariant in ("mshr.no_duplicate_lines",
                                        "mshr.line_map_consistent")

    def test_stale_line_map_caught(self):
        san, hierarchy = attached()
        mshrs = hierarchy.mshrs
        entry = mshrs.allocate(0x10, data_ready=50, is_write=False)
        del mshrs._entries[entry.mshr_id]  # retired behind the map's back
        with pytest.raises(InvariantViolation) as info:
            san.check_mshr_file(mshrs)
        assert info.value.invariant == "mshr.line_map_consistent"

    def test_undrained_entry_caught_at_run_end(self):
        san, hierarchy = attached()
        mshrs = hierarchy.mshrs
        mshrs.allocate(0x10, data_ready=50, is_write=False)
        # No matching hierarchy._pending fill: the data can never arrive.
        with pytest.raises(InvariantViolation) as info:
            san.on_run_end(hierarchy)
        assert info.value.invariant == "mshr.drained"

    def test_scheduled_fill_is_not_a_drain_leak(self):
        san, hierarchy = attached()
        hierarchy.access(0x2000, False, cycle=1)  # cold miss: fill pending
        san.on_run_end(hierarchy)


# -- pipeline / informing hook checks ----------------------------------------


class TestPipelineChecks:
    def test_commit_seq_must_increase(self):
        san, _ = attached()
        san.on_commit(1, 0, 10, None)
        san.on_commit(2, 5, 11, None)
        with pytest.raises(InvariantViolation) as info:
            san.on_commit(2, 6, 12, None)
        assert info.value.invariant == "pipeline.head_monotonic"

    def test_commit_before_complete_caught(self):
        san, _ = attached()
        with pytest.raises(InvariantViolation) as info:
            san.on_commit(1, complete_cycle=20, cycle=10, trap_seq=None)
        assert info.value.invariant == "pipeline.issued_before_graduated"

    def test_commit_past_unresolved_trap_caught(self):
        san, _ = attached()
        with pytest.raises(InvariantViolation) as info:
            san.on_commit(5, 0, 10, trap_seq=3)
        assert info.value.invariant == "pipeline.no_graduation_past_trap"

    def test_inform_on_hit_caught(self):
        from repro.memory.hierarchy import AccessResult

        san, _ = attached()
        hit = AccessResult(False, 1, 0, 2, needs_inform=True)
        with pytest.raises(InvariantViolation) as info:
            san.on_inform_signal(hit)
        assert info.value.invariant == "informing.trap_iff_miss"

    def test_trap_with_mhar_zero_caught(self):
        from repro.core.engine import InformingEngine
        from repro.isa.instructions import load

        san, _ = attached()
        engine = InformingEngine(trap_config())
        engine.disable()  # MHAR <- 0
        inst = load(0x100, dest=2, srcs=(1,), pc=0x1000, informing=True)
        with pytest.raises(InvariantViolation) as info:
            san.on_trap(engine, inst, 100)
        assert info.value.invariant == "informing.mhar_disabled_no_trap"

    def test_wrong_mhrr_caught(self):
        from repro.core.engine import InformingEngine
        from repro.isa.instructions import load

        san, _ = attached()
        engine = InformingEngine(trap_config())
        inst = load(0x100, dest=2, srcs=(1,), pc=0x1000, informing=True)
        engine.on_miss(inst)          # latches MHRR = pc + 4
        san.on_trap(engine, inst, 100)  # correct: passes
        engine.mhrr ^= 0x10
        with pytest.raises(InvariantViolation) as info:
            san.on_trap(engine, inst, 101)
        assert info.value.invariant == "informing.mhrr_return_pc"

    def test_squashed_filled_release_with_resident_line_caught(self):
        san, hierarchy = attached(small_hierarchy(extended=True))
        result = hierarchy.access(0x2000, False, cycle=1)
        hierarchy.access(0x4000, False, cycle=result.ready_cycle + 1)
        entry = hierarchy.mshrs.get(result.mshr_id)
        assert entry is not None and entry.filled  # extended: still pinned
        with pytest.raises(InvariantViolation) as info:
            # Claim a squash happened while the line is still in L1.
            san.on_mshr_release(hierarchy, entry, squashed=True)
        assert info.value.invariant == "informing.squash_invalidates_l1"

    def test_real_release_path_passes(self):
        san, hierarchy = attached(small_hierarchy(extended=True))
        result = hierarchy.access(0x2000, False, cycle=1)
        hierarchy.access(0x4000, False, cycle=result.ready_cycle + 1)
        hierarchy.release_mshr(result.mshr_id, squashed=True)
        assert not hierarchy.l1.contains(0x2000)


# -- end-to-end: sanitized runs are clean and bit-exact ----------------------


def miss_heavy_stream(n=4000, seed=11, span_bits=14):
    import random

    from repro.isa.instructions import alu, load

    rng = random.Random(seed)
    insts = []
    pc = 0x1000
    for _ in range(n):
        if rng.random() < 0.4:
            insts.append(load(rng.randrange(0, 1 << span_bits) & ~3,
                              dest=2, srcs=(1,), pc=pc, informing=True))
        else:
            insts.append(alu(dest=3, srcs=(2,), pc=pc))
        pc += 4
    return insts


class TestEndToEnd:
    @pytest.mark.parametrize("maker", [make_inorder, make_ooo])
    def test_sanitized_run_is_cycle_exact_and_not_vacuous(self, maker):
        baseline = maker(informing=trap_config(),
                         hierarchy=small_hierarchy(extended=True))
        plain = baseline.run(miss_heavy_stream())

        core = maker(informing=trap_config(),
                     hierarchy=small_hierarchy(extended=True))
        san = Sanitizer(every=16)
        san.attach(core)
        checked = core.run(miss_heavy_stream())

        assert checked.cycles == plain.cycles
        assert checked.handler_invocations == plain.handler_invocations
        assert san.checks_passed > 1000, "sanitizer barely ran"
        assert san.full_sweeps > 0
        assert san.cycle > 0

    def test_sanitizer_on_matches_golden_figure2_cells(self):
        """--sanitize must not perturb results: golden stays bit-exact."""
        golden = _golden_index()
        cells = [("compress", "ooo", "U10"), ("espresso", "inorder", "U1"),
                 ("ora", "ooo", "S1"), ("tomcatv", "inorder", "U10")]
        from repro.harness.runner import bar_config, run_bar

        for benchmark, machine, label in cells:
            result = run_bar(benchmark, machine, bar_config(label),
                             QUICK_INSTRUCTIONS, QUICK_WARMUP,
                             sanitize=True)
            mismatches = {
                field: (getattr(result, field), golden[(benchmark, machine,
                                                        label)][field])
                for field in COMPARED_FIELDS
                if getattr(result, field) != golden[(benchmark, machine,
                                                     label)][field]
            }
            assert not mismatches, (
                f"{benchmark}/{machine}/{label} diverged with the "
                f"sanitizer on: {mismatches}")

    def test_run_bar_env_var_enables_sanitizer(self, monkeypatch):
        """REPRO_SANITIZE=1 reaches run_bar without explicit plumbing."""
        import repro.harness.runner as hr

        seen = {}
        real_attach = Sanitizer.attach

        def spying_attach(self, core):
            seen["sanitizer"] = self
            return real_attach(self, core)

        monkeypatch.setattr(Sanitizer, "attach", spying_attach)
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        hr.run_bar("ora", "inorder", hr.bar_config("N"), 500, 0)
        assert isinstance(seen.get("sanitizer"), Sanitizer)
        assert seen["sanitizer"].every == DEFAULT_EVERY
