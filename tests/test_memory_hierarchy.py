"""Unit tests for the two-level hierarchy timing model."""

import pytest

from repro.memory import CacheConfig, HierarchyConfig, MemoryHierarchy


def small_config(**overrides):
    params = dict(
        l1=CacheConfig(size=256, assoc=2, line_size=32),
        l2=CacheConfig(size=2048, assoc=2, line_size=32),
        l1_hit_latency=2,
        l1_to_l2_latency=12,
        l1_to_mem_latency=75,
        mshr_count=4,
        data_banks=2,
        fill_time=4,
        mem_cycles_per_access=20,
    )
    params.update(overrides)
    return HierarchyConfig(**params)


class TestHierarchyConfig:
    def test_line_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            HierarchyConfig(
                l1=CacheConfig(size=256, assoc=2, line_size=32),
                l2=CacheConfig(size=2048, assoc=2, line_size=64),
            )

    def test_latency_ordering_enforced(self):
        with pytest.raises(ValueError):
            small_config(l1_to_l2_latency=30, l1_to_mem_latency=10)


class TestAccessTiming:
    def test_cold_miss_goes_to_memory(self):
        mem = MemoryHierarchy(small_config())
        result = mem.access(0x1000, False, cycle=0)
        assert result.l1_miss
        assert result.level == 3
        assert result.ready_cycle == 75

    def test_l1_hit_after_fill(self):
        mem = MemoryHierarchy(small_config())
        mem.access(0x1000, False, cycle=0)
        result = mem.access(0x1000, False, cycle=100)
        assert not result.l1_miss
        assert result.level == 1
        assert result.ready_cycle == 100 + 2

    def test_l2_hit_latency(self):
        config = small_config()
        mem = MemoryHierarchy(config)
        mem.access(0x1000, False, cycle=0)          # fetch into L1+L2
        # Evict 0x1000 from the tiny L1 with conflicting lines, keep L2.
        mem.access(0x1100, False, cycle=100)
        mem.access(0x1200, False, cycle=200)
        mem.access(0x1300, False, cycle=300)
        result = mem.access(0x1000, False, cycle=500)
        assert result.level == 2
        assert result.ready_cycle == 500 + config.l1_to_l2_latency

    def test_secondary_miss_merges(self):
        mem = MemoryHierarchy(small_config())
        first = mem.access(0x1000, False, cycle=0)
        second = mem.access(0x1008, False, cycle=1)  # same 32B line
        assert second.merged
        assert second.l1_miss
        assert second.mshr_id == first.mshr_id
        assert second.ready_cycle == first.ready_cycle
        assert mem.stats.l1_secondary_misses == 1
        assert mem.stats.l1_misses == 1

    def test_mshr_exhaustion_returns_none(self):
        mem = MemoryHierarchy(small_config(mshr_count=2))
        assert mem.access(0x1000, False, 0) is not None
        assert mem.access(0x2000, False, 0) is not None
        assert mem.access(0x3000, False, 0) is None
        assert mem.stats.mshr_stalls == 1
        # After fills complete, capacity is available again.
        assert mem.access(0x3000, False, 200) is not None

    def test_memory_bandwidth_serialises_misses(self):
        config = small_config(mem_cycles_per_access=20)
        mem = MemoryHierarchy(config)
        r1 = mem.access(0x1000, False, 0)
        r2 = mem.access(0x2000, False, 0)
        assert r1.ready_cycle == 75
        assert r2.ready_cycle == 20 + 75  # queued behind the first access

    def test_cycle_order_enforced(self):
        mem = MemoryHierarchy(small_config())
        mem.access(0x1000, False, 10)
        with pytest.raises(ValueError):
            mem.access(0x2000, False, 5)

    def test_drain_applies_all_fills(self):
        mem = MemoryHierarchy(small_config())
        mem.access(0x1000, False, 0)
        mem.drain()
        assert mem.l1.contains(0x1000)
        assert mem.l2.contains(0x1000)


class TestWriteBehaviour:
    def test_write_allocate(self):
        mem = MemoryHierarchy(small_config())
        result = mem.access(0x1000, True, 0)
        assert result.l1_miss
        mem.drain()
        assert mem.l1.is_dirty(0x1000)

    def test_write_hit_marks_dirty(self):
        mem = MemoryHierarchy(small_config())
        mem.access(0x1000, False, 0)
        mem.access(0x1000, True, 100)
        assert mem.l1.is_dirty(0x1000)

    def test_dirty_eviction_counts_writeback(self):
        mem = MemoryHierarchy(small_config())
        mem.access(0x1000, True, 0)
        # Three conflicting fills evict the dirty line from 2-way L1.
        mem.access(0x1100, False, 100)
        mem.access(0x1200, False, 200)
        mem.access(0x1300, False, 300)
        mem.drain()
        assert mem.stats.writebacks_l1 >= 1


class TestPrefetch:
    def test_prefetch_fills_cache(self):
        mem = MemoryHierarchy(small_config())
        result = mem.access(0x1000, False, 0, prefetch=True)
        assert result is not None
        demand = mem.access(0x1000, False, 100)
        assert not demand.l1_miss
        assert mem.stats.prefetches == 1
        assert mem.stats.l1_accesses == 1  # prefetch not a demand access

    def test_prefetch_dropped_when_mshrs_full(self):
        mem = MemoryHierarchy(small_config(mshr_count=1))
        mem.access(0x1000, False, 0)
        assert mem.access(0x2000, False, 0, prefetch=True) is None
        assert mem.stats.prefetches_dropped == 1
        assert mem.stats.mshr_stalls == 0


class TestSpeculativeSquash:
    """Section 3.3: squashed informing loads must not leave new L1 state."""

    def make(self):
        return MemoryHierarchy(small_config(), extended_mshr_lifetime=True)

    def test_squash_after_fill_invalidates_l1_keeps_l2(self):
        mem = self.make()
        result = mem.access(0x1000, False, 0)
        mem.access(0x5000, False, 300)  # advances time past the fill
        mem.release_mshr(result.mshr_id, squashed=True)
        assert not mem.l1.contains(0x1000)
        assert mem.l2.contains(0x1000)  # effectively prefetched into L2
        assert mem.stats.squash_invalidations == 1

    def test_squash_before_fill_suppresses_install(self):
        mem = self.make()
        result = mem.access(0x1000, False, 0)
        mem.release_mshr(result.mshr_id, squashed=True)  # data not back yet
        mem.drain()
        assert not mem.l1.contains(0x1000)
        assert mem.l2.contains(0x1000)
        assert mem.stats.squash_invalidations == 0

    def test_graduation_keeps_line(self):
        mem = self.make()
        result = mem.access(0x1000, False, 0)
        mem.drain()
        mem.release_mshr(result.mshr_id, squashed=False)
        assert mem.l1.contains(0x1000)

    def test_pinned_entries_consume_capacity(self):
        mem = MemoryHierarchy(small_config(mshr_count=2),
                              extended_mshr_lifetime=True)
        r1 = mem.access(0x1000, False, 0)
        mem.access(0x2000, False, 0)
        mem.drain()
        # Both filled but neither released: file is still full.
        assert mem.access(0x3000, False, 400) is None
        mem.release_mshr(r1.mshr_id, squashed=False)
        assert mem.access(0x3000, False, 401) is not None


class TestICache:
    def test_no_icache_is_free(self):
        mem = MemoryHierarchy(small_config())
        assert mem.ifetch(0x100, 5) == 5

    def test_icache_miss_then_hit(self):
        mem = MemoryHierarchy(
            small_config(), icache=CacheConfig(size=256, assoc=2, line_size=32))
        first = mem.ifetch(0x100, 0)
        assert first > 0
        assert mem.ifetch(0x100, first) == first
        assert mem.i_misses == 1
        assert mem.i_accesses == 2
