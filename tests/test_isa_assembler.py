"""Unit tests for the assembler and static-program representation."""

import pytest

from repro.isa import AssemblyError, Instruction, Label, Program, assemble
from repro.isa.program import INST_BYTES
from repro.isa.registers import fp_reg, int_reg


class TestProgram:
    def test_append_and_labels(self):
        program = Program()
        program.append(Label("top"))
        program.append(Instruction("nop"))
        assert program.target_index("top") == 0
        assert len(program) == 1

    def test_pc_spacing(self):
        program = Program(base_pc=0x2000)
        assert program.pc_of(3) == 0x2000 + 3 * INST_BYTES

    def test_duplicate_label_rejected(self):
        program = Program()
        program.append(Label("x"))
        with pytest.raises(ValueError):
            program.append(Label("x"))

    def test_undefined_label_lookup(self):
        with pytest.raises(KeyError):
            Program().target_index("nowhere")

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(ValueError):
            Instruction("frobnicate")


class TestAssembler:
    def test_basic_program(self):
        program = assemble(
            """
            # a comment line
            start:
                li   r1, 0x10
                ld   r2, 4(r1)    ; inline comment
                add  r3, r1, r2
                bne  r3, r0, start
                halt
            """
        )
        assert len(program) == 5
        assert program.target_index("start") == 0
        ld = program.instructions[1]
        assert ld.mnemonic == "ld"
        assert ld.operands == (int_reg(2), (4, int_reg(1)))

    def test_fp_registers(self):
        program = assemble("fadd f1, f2, f3\nhalt")
        assert program.instructions[0].operands == (
            fp_reg(1), fp_reg(2), fp_reg(3))

    def test_negative_memory_offset(self):
        program = assemble("ld r1, -8(r2)\nhalt")
        assert program.instructions[0].operands[1] == (-8, int_reg(2))

    def test_undefined_label_is_eager_error(self):
        with pytest.raises(AssemblyError, match="undefined label"):
            assemble("j nowhere\nhalt")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError, match="expects 3 operands"):
            assemble("add r1, r2")

    def test_bad_register(self):
        with pytest.raises(AssemblyError):
            assemble("li r99, 1")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblyError, match="offset"):
            assemble("ld r1, r2")

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble("bogus r1, r2")

    def test_bad_immediate(self):
        with pytest.raises(AssemblyError, match="immediate"):
            assemble("li r1, banana")
