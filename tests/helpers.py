"""Shared builders for core-level tests: small machines and traces."""

from repro.core import GenericHandler, InformingConfig, Mechanism, TrapStyle
from repro.inorder import InOrderCore
from repro.memory import CacheConfig, HierarchyConfig, MemoryHierarchy
from repro.ooo import OutOfOrderCore
from repro.pipeline import CoreConfig, LatencyTable


def small_hierarchy(extended=False, **overrides):
    params = dict(
        l1=CacheConfig(size=512, assoc=2, line_size=32),
        l2=CacheConfig(size=4096, assoc=2, line_size=32),
        l1_hit_latency=2,
        l1_to_l2_latency=12,
        l1_to_mem_latency=75,
        mshr_count=8,
        data_banks=2,
        fill_time=4,
        mem_cycles_per_access=20,
    )
    params.update(overrides)
    return MemoryHierarchy(HierarchyConfig(**params),
                           extended_mshr_lifetime=extended)


def inorder_config(**overrides):
    params = dict(
        name="test-inorder",
        issue_width=4,
        int_units=2,
        fp_units=2,
        branch_units=1,
        mem_units=0,
        mispredict_penalty=5,
        latencies=LatencyTable(fdiv=17, fp_other=4),
    )
    params.update(overrides)
    return CoreConfig(**params)


def ooo_config(**overrides):
    params = dict(
        name="test-ooo",
        issue_width=4,
        int_units=2,
        fp_units=2,
        branch_units=1,
        mem_units=1,
        rob_size=32,
        shadow_branches=4,
        mispredict_penalty=4,
        latencies=LatencyTable(),
    )
    params.update(overrides)
    return CoreConfig(**params)


def make_inorder(informing=None, hierarchy=None, observer=None, **cfg):
    return InOrderCore(inorder_config(**cfg),
                       hierarchy or small_hierarchy(),
                       informing=informing, observer=observer)


def make_ooo(informing=None, hierarchy=None, observer=None,
             wrong_path_factory=None, **cfg):
    return OutOfOrderCore(ooo_config(**cfg),
                          hierarchy or small_hierarchy(),
                          informing=informing, observer=observer,
                          wrong_path_factory=wrong_path_factory)


def trap_config(n=1, unique=False, style=TrapStyle.BRANCH_LIKE):
    return InformingConfig(
        mechanism=Mechanism.TRAP,
        trap_style=style,
        handler=GenericHandler(n, unique=unique),
        unique_handlers=unique,
    )


def cc_config(n=1):
    return InformingConfig(
        mechanism=Mechanism.CONDITION_CODE,
        handler=GenericHandler(n, unique=True),
    )
