"""Property-based tests of the directory protocol's invariants."""

from hypothesis import given, settings, strategies as st

from repro.coherence import BlockState, DirectoryProtocol

# A random sequence of (processor, block, is_write) protocol operations.
operations = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 15), st.booleans()),
    min_size=1, max_size=200)


def run_ops(ops, procs=8):
    protocol = DirectoryProtocol(procs, message_latency=900)
    for proc, block, is_write in ops:
        if is_write:
            protocol.acquire_write(proc, block)
        else:
            protocol.acquire_read(proc, block)
    return protocol


class TestProtocolInvariants:
    @given(operations)
    @settings(max_examples=100)
    def test_single_writer(self, ops):
        """At most one processor holds a block READWRITE."""
        protocol = run_ops(ops)
        for block in range(16):
            writers = [proc for proc in range(8)
                       if protocol.state(proc, block) is BlockState.READWRITE]
            assert len(writers) <= 1

    @given(operations)
    @settings(max_examples=100)
    def test_writer_excludes_readers(self, ops):
        """If a writer exists, no other processor holds any copy."""
        protocol = run_ops(ops)
        for block in range(16):
            owner = protocol.owner(block)
            if owner is None:
                continue
            for proc in range(8):
                if proc != owner:
                    assert protocol.state(proc, block) is BlockState.INVALID

    @given(operations)
    @settings(max_examples=100)
    def test_sharers_set_matches_states(self, ops):
        """The directory's sharer list agrees with per-processor states."""
        protocol = run_ops(ops)
        for block in range(16):
            with_copy = {proc for proc in range(8)
                         if protocol.state(proc, block)
                         is not BlockState.INVALID}
            assert with_copy == protocol.sharers(block)

    @given(operations)
    @settings(max_examples=100)
    def test_owner_state_is_readwrite(self, ops):
        protocol = run_ops(ops)
        for block in range(16):
            owner = protocol.owner(block)
            if owner is not None:
                assert protocol.state(owner, block) is BlockState.READWRITE

    @given(operations)
    @settings(max_examples=60)
    def test_costs_are_bounded_message_multiples(self, ops):
        """Every operation costs 0, 2 or 4 one-way message latencies."""
        protocol = DirectoryProtocol(8, message_latency=900)
        for proc, block, is_write in ops:
            if is_write:
                cost = protocol.acquire_write(proc, block)
            else:
                cost = protocol.acquire_read(proc, block)
            assert cost in (0, 1800, 3600)

    @given(operations)
    @settings(max_examples=60)
    def test_eviction_hooks_fire_exactly_per_revocation(self, ops):
        revoked = []
        protocol = DirectoryProtocol(8, message_latency=900)
        protocol.eviction_hooks.append(lambda p, b: revoked.append((p, b)))
        for proc, block, is_write in ops:
            if is_write:
                protocol.acquire_write(proc, block)
            else:
                protocol.acquire_read(proc, block)
        assert len(revoked) == protocol.remote_invalidations

    @given(operations)
    @settings(max_examples=60)
    def test_page_ro_counts_never_negative(self, ops):
        protocol = run_ops(ops)
        assert all(count >= 0 for count in protocol._ro_count.values())

    @given(operations, st.integers(0, 7), st.integers(0, 15))
    @settings(max_examples=60)
    def test_access_after_acquire_is_adequate(self, ops, proc, block):
        """Acquiring access always leaves the requester adequate."""
        protocol = run_ops(ops)
        protocol.acquire_write(proc, block)
        assert protocol.state(proc, block) is BlockState.READWRITE
        protocol2 = run_ops(ops)
        protocol2.acquire_read(proc, block)
        assert protocol2.state(proc, block) in (BlockState.READONLY,
                                                BlockState.READWRITE)
