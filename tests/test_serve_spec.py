"""Job-spec validation: HTTP/CLI cache-key parity, structured rejects."""

from dataclasses import asdict

import pytest
from hypothesis import given, settings, strategies as st

from repro.coherence import TABLE2_MACHINE, AccessControlMethod
from repro.exec import SimJob
from repro.harness.runner import DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP
from repro.serve.spec import (
    MAX_INSTRUCTIONS,
    SpecError,
    job_to_spec,
    validate_job_spec,
)
from repro.workloads import SPEC92
from repro.workloads.parallel import PARALLEL_KERNELS

#: Bar labels the harness grids actually use (bar_config's vocabulary).
LABELS = ["N", "S2", "S10", "S50", "U4", "U8", "E16", "E50", "CC2", "CC10"]

bar_specs = st.fixed_dictionaries({
    "kind": st.just("bar"),
    "benchmark": st.sampled_from(sorted(SPEC92)),
    "machine": st.sampled_from(["ooo", "inorder"]),
    "label": st.sampled_from(LABELS),
    "instructions": st.integers(min_value=1, max_value=MAX_INSTRUCTIONS),
    "warmup": st.integers(min_value=0, max_value=MAX_INSTRUCTIONS),
    "seed": st.integers(min_value=-(2 ** 31), max_value=2 ** 31),
})

ac_specs = st.fixed_dictionaries({
    "kind": st.just("access_control"),
    "workload": st.sampled_from(sorted(PARALLEL_KERNELS)),
    "method": st.sampled_from([m.name for m in AccessControlMethod]),
})


class TestCacheKeyParity:
    """An accepted HTTP spec and the equivalent CLI-side construction
    serialize to the same content address."""

    @given(bar_specs)
    @settings(max_examples=100)
    def test_bar_spec_matches_cli_construction(self, spec):
        via_http = validate_job_spec(spec)
        via_cli = SimJob.bar(benchmark=spec["benchmark"],
                             machine=spec["machine"], label=spec["label"],
                             instructions=spec["instructions"],
                             warmup=spec["warmup"], seed=spec["seed"])
        assert via_http.cache_key() == via_cli.cache_key()
        assert via_http.to_dict() == via_cli.to_dict()

    @given(ac_specs)
    @settings(max_examples=50)
    def test_access_control_spec_matches_cli_construction(self, spec):
        via_http = validate_job_spec(spec)
        via_cli = SimJob.access_control(
            workload=spec["workload"], method=spec["method"],
            machine_params=asdict(TABLE2_MACHINE))
        assert via_http.cache_key() == via_cli.cache_key()

    @given(st.one_of(bar_specs, ac_specs))
    @settings(max_examples=100)
    def test_round_trip_preserves_cache_key(self, spec):
        job = validate_job_spec(spec)
        again = validate_job_spec(job_to_spec(job))
        assert again.cache_key() == job.cache_key()


class TestDefaults:
    def test_bar_defaults_match_harness(self):
        job = validate_job_spec({"kind": "bar", "benchmark": "compress",
                                 "machine": "ooo", "label": "S10"})
        assert job.instructions == DEFAULT_INSTRUCTIONS
        assert job.warmup == DEFAULT_WARMUP
        assert job.seed == 0

    def test_kind_defaults_to_bar(self):
        job = validate_job_spec({"benchmark": "compress", "machine": "ooo",
                                 "label": "N"})
        assert job.kind == "bar"

    def test_access_control_defaults_to_table2_machine(self):
        job = validate_job_spec({"kind": "access_control",
                                 "workload": sorted(PARALLEL_KERNELS)[0],
                                 "method": "INFORMING"})
        assert job.config_dict()["machine_params"] == asdict(TABLE2_MACHINE)


class TestRejects:
    """Every malformed spec raises SpecError naming the offending field
    (the gateway renders it as a structured 400, never a traceback)."""

    @pytest.mark.parametrize("payload,field", [
        (None, "spec"),
        ([1, 2], "spec"),
        ({"kind": "nope"}, "kind"),
        ({"kind": 3}, "kind"),
        ({"kind": "bar"}, "benchmark"),
        ({"kind": "bar", "benchmark": "notaspec", "machine": "ooo",
          "label": "N"}, "benchmark"),
        ({"kind": "bar", "benchmark": "compress", "machine": "vax",
          "label": "N"}, "machine"),
        ({"kind": "bar", "benchmark": "compress", "machine": "ooo",
          "label": "Z9"}, "label"),
        ({"kind": "bar", "benchmark": "compress", "machine": "ooo",
          "label": "N", "instructions": "many"}, "instructions"),
        ({"kind": "bar", "benchmark": "compress", "machine": "ooo",
          "label": "N", "instructions": True}, "instructions"),
        ({"kind": "bar", "benchmark": "compress", "machine": "ooo",
          "label": "N", "instructions": 0}, "instructions"),
        ({"kind": "bar", "benchmark": "compress", "machine": "ooo",
          "label": "N", "instructions": MAX_INSTRUCTIONS + 1},
         "instructions"),
        ({"kind": "bar", "benchmark": "compress", "machine": "ooo",
          "label": "N", "warmup": -1}, "warmup"),
        ({"kind": "bar", "benchmark": "compress", "machine": "ooo",
          "label": "N", "benchmrk": "typo"}, "benchmrk"),
        ({"kind": "access_control", "workload": "nope",
          "method": "INFORMING"}, "workload"),
        ({"kind": "access_control", "workload": "migratory",
          "method": "MAGIC"}, "method"),
        ({"kind": "access_control", "workload": "migratory",
          "method": "INFORMING", "machine_params": 7}, "machine_params"),
        ({"kind": "access_control", "workload": "migratory",
          "method": "INFORMING",
          "machine_params": {"warp_drive": 1}}, "machine_params"),
        ({"kind": "access_control", "workload": "migratory",
          "method": "INFORMING",
          "machine_params": {"processors": "four"}}, "machine_params"),
    ])
    def test_rejected_with_field(self, payload, field):
        with pytest.raises(SpecError) as excinfo:
            validate_job_spec(payload)
        assert excinfo.value.field == field
        body = excinfo.value.to_dict()
        assert body["error"] == "invalid_spec"
        assert body["field"] == field
        assert isinstance(body["message"], str)

    def test_machine_params_override_is_accepted(self):
        params = dict(asdict(TABLE2_MACHINE), message_latency=500)
        job = validate_job_spec({"kind": "access_control",
                                 "workload": "migratory",
                                 "method": "ECC",
                                 "machine_params": {"message_latency": 500}})
        assert job.config_dict()["machine_params"] == params
