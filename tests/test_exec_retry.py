"""Retry semantics: backoff doubling, budget caps, attempt carryover.

The contract under test: a job gets at most ``1 + retries`` attempts
*total* — across pool and serial execution, and across an interrupted
run and its resume — with exponential backoff between attempts.
"""

import os
import signal
import time
from types import SimpleNamespace

import pytest

from repro.exec import (
    ExecOptions,
    JobFailedError,
    JobRunner,
    SimJob,
    TransientJobError,
)

# -- pluggable payloads (module-level: picklable by reference) ---------------


def _bump_counter(path) -> int:
    count = 0
    if os.path.exists(path):
        with open(path) as fh:
            count = int(fh.read())
    count += 1
    with open(path, "w") as fh:
        fh.write(str(count))
    return count


def counting_transient(job):
    """Always-transient payload; ``<benchmark>.runs`` counts attempts."""
    _bump_counter(job.benchmark + ".runs")
    raise TransientJobError("chaos: never succeeds")


def transient_then_worker_death(job):
    """First call: transient fault.  Second call (in a pool worker):
    SIGKILL, breaking the pool mid-retry.  Later (serial fallback)
    calls: transient again.  Exercises attempt carryover across the
    pool-broken boundary."""
    import multiprocessing

    count = _bump_counter(job.benchmark + ".runs")
    in_pool = multiprocessing.parent_process() is not None
    if count >= 2 and in_pool:
        os.kill(os.getpid(), signal.SIGKILL)
    raise TransientJobError(f"chaos: transient fault #{count}")


def scratch_job(base):
    return SimJob.bar(benchmark=str(base), machine="m", label="L",
                      instructions=1, warmup=0, seed=0)


def runs_count(base) -> int:
    with open(str(base) + ".runs") as fh:
        return int(fh.read())


def options(**overrides):
    fields = dict(jobs=1, cache=False, backoff=0.01)
    fields.update(overrides)
    return ExecOptions(**fields)


class TestBackoff:
    def test_backoff_doubles_per_retry(self, tmp_path, monkeypatch):
        sleeps = []
        monkeypatch.setattr(time, "sleep",
                            lambda seconds: sleeps.append(seconds))
        runner = JobRunner(options(retries=3, backoff=0.25),
                           execute=counting_transient)
        with pytest.raises(JobFailedError, match="after 4 attempt"):
            runner.run([scratch_job(tmp_path / "j")])
        assert sleeps == [0.25, 0.5, 1.0]

    def test_zero_retries_never_sleeps(self, tmp_path, monkeypatch):
        sleeps = []
        monkeypatch.setattr(time, "sleep",
                            lambda seconds: sleeps.append(seconds))
        runner = JobRunner(options(retries=0), execute=counting_transient)
        with pytest.raises(JobFailedError, match="after 1 attempt"):
            runner.run([scratch_job(tmp_path / "j")])
        assert sleeps == []


class TestBudgetCapsTotalAttempts:
    @pytest.mark.parametrize("jobs_opt", [1, 2])
    def test_exactly_budget_many_attempts(self, tmp_path, jobs_opt):
        job = scratch_job(tmp_path / "j")
        runner = JobRunner(options(jobs=jobs_opt, retries=2),
                           execute=counting_transient)
        with pytest.raises(JobFailedError, match="after 3 attempt"):
            runner.run([job])
        assert runs_count(tmp_path / "j") == 3  # 1 + retries, no more

    @pytest.mark.parametrize("jobs_opt", [1, 2])
    def test_seeded_attempts_shrink_the_budget(self, tmp_path, jobs_opt):
        """run(resume=...) accepts any object with completed/attempts;
        attempts already spent in a prior (journaled) run count against
        the budget, so a resume grants one more try here, not three."""
        job = scratch_job(tmp_path / "j")
        prior = SimpleNamespace(completed={},
                                attempts={job.cache_key(): 2})
        runner = JobRunner(options(jobs=jobs_opt, retries=2),
                           execute=counting_transient)
        with pytest.raises(JobFailedError, match="after 3 attempt"):
            runner.run([job], resume=prior)
        assert runs_count(tmp_path / "j") == 1

    def test_carryover_across_pool_broken_fallback(self, tmp_path):
        """A retry already spent in the pool still counts after the pool
        breaks: transient (pool) -> SIGKILL mid-retry -> the serial
        fallback resumes at attempt 1 and the budget allows exactly two
        more calls, not three."""
        job = scratch_job(tmp_path / "j")
        runner = JobRunner(options(jobs=2, retries=2),
                           execute=transient_then_worker_death)
        with pytest.raises(JobFailedError, match="after 3 attempt"):
            runner.run([job])
        assert runner.stats.pool_breaks == 1
        # pool attempt 0 (transient), pool attempt 1 (killed mid-call,
        # counted before the kill), serial attempts 1 and 2.
        assert runs_count(tmp_path / "j") == 4
