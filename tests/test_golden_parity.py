"""Cycle-exactness regression: the simulators against a golden capture.

``results/golden/figure2_quick.json`` holds the full 130-bar
``figure2 --quick`` export captured *before* the hot-path optimization
pass (seed commit lineage).  The simulators are deterministic, so every
optimization since must reproduce those statistics exactly — integers
equal, floats bit-for-bit.  Any mismatch means an "optimization" changed
machine behaviour, which is a correctness bug here no matter how much
faster it is.

The default run re-simulates a 13-cell subset spanning every label, both
machines, and a spread of benchmarks (a few seconds).  Set
``REPRO_GOLDEN_FULL=1`` to re-simulate all 130 golden cells.

Regenerating the golden (ONLY after an intentional behaviour change, e.g.
a timing-model fix — never to make an optimization pass):

    PYTHONPATH=src python -m repro.harness figure2 --quick --jobs 1 \
        --no-cache --no-bench --json results/golden/figure2_quick.json
"""

import json
import os

import pytest

from repro.harness.export import _BAR_FIELDS
from repro.harness.runner import bar_config, run_bar

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                           "results", "golden", "figure2_quick.json")

#: figure2 --quick run lengths (DEFAULT_INSTRUCTIONS // 4 and
#: DEFAULT_WARMUP // 4 at capture time; pinned here so later changes to
#: the defaults cannot silently shift what this test simulates).
QUICK_INSTRUCTIONS = 7_500
QUICK_WARMUP = 3_750

#: Fields compared exactly.  ``normalized`` is excluded: it is computed
#: against the benchmark's N bar during figure assembly, not by run_bar.
COMPARED_FIELDS = [f for f in _BAR_FIELDS if f != "normalized"]

#: Default subset: every label at least twice, both machines, and a mix of
#: low-miss (ora), mid (compress, espresso), and high-miss (swm256,
#: tomcatv) benchmarks.
DEFAULT_CELLS = [
    ("compress", "ooo", "N"),
    ("compress", "inorder", "N"),
    ("compress", "ooo", "U10"),
    ("swm256", "ooo", "N"),
    ("hydro2d", "inorder", "S10"),
    ("mdljsp2", "ooo", "U1"),
    ("ora", "inorder", "N"),
    ("ora", "ooo", "S1"),
    ("espresso", "ooo", "S10"),
    ("espresso", "inorder", "U1"),
    ("tomcatv", "inorder", "U10"),
    ("tomcatv", "ooo", "S1"),
    ("alvinn", "inorder", "S1"),
]


def _load_golden():
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)["bars"]


def _golden_index():
    return {(row["benchmark"], row["machine"], row["label"]): row
            for row in _load_golden()}


def _cells():
    if os.environ.get("REPRO_GOLDEN_FULL") == "1":
        return [(row["benchmark"], row["machine"], row["label"])
                for row in _load_golden()]
    return DEFAULT_CELLS


@pytest.mark.parametrize("workload,machine,label", _cells())
def test_golden_parity(workload, machine, label):
    golden = _golden_index()[(workload, machine, label)]
    result = run_bar(workload, machine, bar_config(label),
                     QUICK_INSTRUCTIONS, QUICK_WARMUP)
    mismatches = {
        field: (getattr(result, field), golden[field])
        for field in COMPARED_FIELDS
        if getattr(result, field) != golden[field]
    }
    assert not mismatches, (
        f"{workload}/{machine}/{label} diverged from the golden capture "
        f"(got, want): {mismatches}")


def test_golden_capture_shape():
    """The capture itself: full 130-bar grid, no duplicates, all fields."""
    rows = _load_golden()
    assert len(rows) == 130
    keys = {(r["benchmark"], r["machine"], r["label"]) for r in rows}
    assert len(keys) == 130
    labels = {r["label"] for r in rows}
    assert labels == {"N", "S1", "U1", "S10", "U10"}
    assert {r["machine"] for r in rows} == {"ooo", "inorder"}
    for row in rows:
        for field in _BAR_FIELDS:
            assert field in row


def test_default_subset_exists_in_golden():
    """Guard the hand-picked subset against golden regeneration drift."""
    index = _golden_index()
    for cell in DEFAULT_CELLS:
        assert cell in index, f"default parity cell {cell} not in golden"
