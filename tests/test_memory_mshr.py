"""Unit tests for the MSHR file, including Section 3.3 extended lifetime."""

import pytest

from repro.memory import MSHRFile


class TestBasicLifetime:
    def test_allocate_and_autofree(self):
        file = MSHRFile(count=2)
        entry = file.allocate(0x10, data_ready=50, is_write=False)
        assert entry is not None
        assert file.occupancy() == 1
        file.mark_filled(entry.mshr_id)
        assert file.occupancy() == 0

    def test_capacity_limit(self):
        file = MSHRFile(count=2)
        assert file.allocate(1, 10, False) is not None
        assert file.allocate(2, 10, False) is not None
        assert file.full
        assert file.allocate(3, 10, False) is None
        assert file.allocation_failures == 1

    def test_duplicate_line_rejected(self):
        file = MSHRFile(count=4)
        file.allocate(0x10, 50, False)
        with pytest.raises(ValueError):
            file.allocate(0x10, 60, False)

    def test_merge_secondary_miss(self):
        file = MSHRFile(count=2)
        entry = file.allocate(0x10, 50, is_write=False)
        merged = file.merge(0x10, is_write=True)
        assert merged is entry
        assert entry.merged == 1
        assert entry.is_write  # write merged into a read miss

    def test_merge_unknown_line(self):
        with pytest.raises(KeyError):
            MSHRFile(count=2).merge(0x99, False)

    def test_high_water_mark(self):
        file = MSHRFile(count=4)
        a = file.allocate(1, 10, False)
        file.allocate(2, 10, False)
        file.mark_filled(a.mshr_id)
        file.allocate(3, 10, False)
        assert file.high_water == 2

    def test_bad_count(self):
        with pytest.raises(ValueError):
            MSHRFile(count=0)

    def test_flush(self):
        file = MSHRFile(count=2)
        file.allocate(1, 10, False)
        file.flush()
        assert file.occupancy() == 0


class TestExtendedLifetime:
    def test_pinned_entry_survives_fill(self):
        file = MSHRFile(count=2, extended_lifetime=True)
        entry = file.allocate(0x10, 50, False)
        file.mark_filled(entry.mshr_id)
        assert file.occupancy() == 1  # still pinned

    def test_graduate_release(self):
        file = MSHRFile(count=2, extended_lifetime=True)
        entry = file.allocate(0x10, 50, False)
        file.mark_filled(entry.mshr_id)
        assert file.release(entry.mshr_id, squashed=False) is None
        assert file.occupancy() == 0

    def test_squash_after_fill_requests_invalidation(self):
        file = MSHRFile(count=2, extended_lifetime=True)
        entry = file.allocate(0x10, 50, False)
        file.mark_filled(entry.mshr_id)
        assert file.release(entry.mshr_id, squashed=True) == 0x10

    def test_squash_before_fill_requests_nothing(self):
        file = MSHRFile(count=2, extended_lifetime=True)
        entry = file.allocate(0x10, 50, False)
        assert file.release(entry.mshr_id, squashed=True) is None
        assert file.occupancy() == 0

    def test_filled_entry_stops_being_merge_target(self):
        file = MSHRFile(count=4, extended_lifetime=True)
        entry = file.allocate(0x10, 50, False)
        file.mark_filled(entry.mshr_id)
        # The line filled and might since have been evicted: a new miss
        # must be able to allocate a fresh entry rather than merge.
        assert file.lookup(0x10) is None
        second = file.allocate(0x10, 90, False)
        assert second is not None
        assert file.occupancy() == 2

    def test_release_unpinned_entry_rejected(self):
        file = MSHRFile(count=2, extended_lifetime=False)
        entry = file.allocate(0x10, 50, False)
        with pytest.raises(ValueError):
            file.release(entry.mshr_id, squashed=False)

    def test_release_unknown_id_is_noop(self):
        file = MSHRFile(count=2, extended_lifetime=True)
        assert file.release(123, squashed=True) is None
