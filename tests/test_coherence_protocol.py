"""Unit tests for the directory protocol and protection-state table."""

import pytest

from repro.coherence import BlockState, DirectoryProtocol


def make(procs=4, latency=900):
    return DirectoryProtocol(procs, latency)


class TestStateTable:
    def test_initially_invalid(self):
        protocol = make()
        assert protocol.state(0, 5) is BlockState.INVALID

    def test_block_of(self):
        protocol = make()
        assert protocol.block_of(0) == 0
        assert protocol.block_of(31) == 0
        assert protocol.block_of(32) == 1


class TestReads:
    def test_cold_read_two_hops(self):
        protocol = make()
        assert protocol.acquire_read(0, 7) == 2 * 900
        assert protocol.state(0, 7) is BlockState.READONLY
        assert protocol.sharers(7) == {0}

    def test_reread_free(self):
        protocol = make()
        protocol.acquire_read(0, 7)
        assert protocol.acquire_read(0, 7) == 0

    def test_multiple_readers_share(self):
        protocol = make()
        protocol.acquire_read(0, 7)
        protocol.acquire_read(1, 7)
        assert protocol.sharers(7) == {0, 1}

    def test_read_downgrades_writer(self):
        protocol = make()
        protocol.acquire_write(1, 7)
        cost = protocol.acquire_read(0, 7)
        assert cost == 4 * 900  # request/data + downgrade round trip
        assert protocol.state(1, 7) is BlockState.READONLY
        assert protocol.owner(7) is None
        assert protocol.downgrades == 1


class TestWrites:
    def test_cold_write_two_hops(self):
        protocol = make()
        assert protocol.acquire_write(0, 3) == 2 * 900
        assert protocol.state(0, 3) is BlockState.READWRITE
        assert protocol.owner(3) == 0

    def test_rewrite_free(self):
        protocol = make()
        protocol.acquire_write(0, 3)
        assert protocol.acquire_write(0, 3) == 0

    def test_write_invalidates_sharers(self):
        protocol = make()
        protocol.acquire_read(1, 3)
        protocol.acquire_read(2, 3)
        cost = protocol.acquire_write(0, 3)
        assert cost == 4 * 900  # grant + one parallel invalidation round trip
        assert protocol.state(1, 3) is BlockState.INVALID
        assert protocol.state(2, 3) is BlockState.INVALID
        assert protocol.remote_invalidations == 2

    def test_write_steals_ownership(self):
        protocol = make()
        protocol.acquire_write(1, 3)
        protocol.acquire_write(0, 3)
        assert protocol.owner(3) == 0
        assert protocol.state(1, 3) is BlockState.INVALID

    def test_upgrade_from_readonly(self):
        protocol = make()
        protocol.acquire_read(0, 3)
        protocol.acquire_read(1, 3)
        cost = protocol.acquire_write(0, 3)
        assert cost == 4 * 900
        assert protocol.state(0, 3) is BlockState.READWRITE
        assert protocol.state(1, 3) is BlockState.INVALID

    def test_lone_reader_upgrade_is_two_hops(self):
        protocol = make()
        protocol.acquire_read(0, 3)
        assert protocol.acquire_write(0, 3) == 2 * 900


class TestEvictionHooks:
    def test_hook_called_on_revoke(self):
        protocol = make()
        revoked = []
        protocol.eviction_hooks.append(lambda p, b: revoked.append((p, b)))
        protocol.acquire_read(1, 3)
        protocol.acquire_write(0, 3)
        assert revoked == [(1, 3)]


class TestPageReadonlyTracking:
    def test_page_flag_follows_state(self):
        protocol = DirectoryProtocol(4, 900, coherence_unit=32, page_size=128)
        addr = 0  # block 0, page 0
        assert not protocol.page_has_readonly(0, addr)
        protocol.acquire_read(0, 0)
        assert protocol.page_has_readonly(0, addr)
        protocol.acquire_write(0, 0)  # upgrade: no longer READONLY
        assert not protocol.page_has_readonly(0, addr)

    def test_page_granularity(self):
        protocol = DirectoryProtocol(4, 900, coherence_unit=32, page_size=128)
        protocol.acquire_read(0, 1)  # block 1 is on page 0 (4 blocks/page)
        assert protocol.page_has_readonly(0, 64)   # other block, same page
        assert not protocol.page_has_readonly(0, 128)  # next page

    def test_per_processor_pages(self):
        protocol = DirectoryProtocol(4, 900, coherence_unit=32, page_size=128)
        protocol.acquire_read(0, 0)
        assert not protocol.page_has_readonly(1, 0)

    def test_invalidation_clears_page_flag(self):
        protocol = DirectoryProtocol(4, 900, coherence_unit=32, page_size=128)
        protocol.acquire_read(1, 0)
        protocol.acquire_write(0, 0)  # invalidates proc 1
        assert not protocol.page_has_readonly(1, 0)
