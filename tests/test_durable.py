"""The write-ahead journal: framing, torn tails, fsync policy, ENOSPC."""

import os

import pytest

from repro.durable import (
    BATCH_FSYNC_INTERVAL,
    ENV_FSYNC,
    RunJournal,
    check_header,
    frame,
    fsync_policy,
    header_record,
    read_records,
    unframe,
)
from repro.sanitize.chaos import arm_journal_enospc, flip_byte, truncate_tail


class TestFraming:
    def test_roundtrip(self):
        record = {"rec": "job_start", "key": "ab" * 32, "attempt": 1}
        assert unframe(frame(record).rstrip("\n")) == record

    def test_crc_rejects_payload_edit(self):
        line = frame({"rec": "job_finish", "wall": 1.5}).rstrip("\n")
        tampered = line.replace("1.5", "9.5")
        assert unframe(tampered) is None

    def test_rejects_garbage_shapes(self):
        assert unframe("") is None
        assert unframe("short") is None
        assert unframe("zzzzzzzz {}") is None  # non-hex crc
        assert unframe("00000000 [1,2]") is None  # valid frame, non-dict
        # A correctly-framed non-JSON payload cannot really exist (the
        # crc covers the bytes), but a matching crc over garbage must
        # still not parse:
        import zlib
        crc = zlib.crc32(b"not json") & 0xFFFFFFFF
        assert unframe(f"{crc:08x} not json") is None

    def test_canonical_json_is_stable(self):
        a = frame({"b": 1, "a": 2})
        b = frame({"a": 2, "b": 1})
        assert a == b


class TestReadRecords:
    def test_missing_file_is_empty_untruncated(self, tmp_path):
        records, bad, truncated = read_records(str(tmp_path / "nope.jsonl"))
        assert records == [] and bad == 0 and not truncated

    def test_whole_file_roundtrip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(str(path), fsync="off") as journal:
            journal.append(header_record("exec_run", run_id="r1"))
            journal.record("job_start", key="k1", attempt=1)
            journal.record("job_finish", key="k1")
        records, bad, truncated = read_records(str(path))
        assert [r["rec"] for r in records] == [
            "journal_header", "job_start", "job_finish"]
        assert bad == 0 and not truncated
        assert check_header(records, "exec_run")
        assert not check_header(records, "serve")

    def test_torn_tail_trusted_prefix(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(str(path), fsync="off") as journal:
            journal.append(header_record("exec_run", run_id="r1"))
            for index in range(5):
                journal.record("job_start", key=f"k{index}", attempt=1)
        # Tear off half the last record, the SIGKILL-mid-write shape.
        truncate_tail(str(path), 20)
        records, bad, truncated = read_records(str(path))
        assert truncated and bad == 1
        assert len(records) == 5  # header + 4 intact records
        assert records[-1]["key"] == "k3"

    def test_flipped_byte_stops_the_scan(self, tmp_path):
        path = tmp_path / "j.jsonl"
        lines = [frame({"rec": "a", "i": index}) for index in range(4)]
        path.write_text("".join(lines))
        # Corrupt the middle of line 2 (0-indexed 1).
        offset = len(lines[0]) + len(lines[1]) // 2
        flip_byte(str(path), offset=offset, mask=0x01)
        records, bad, truncated = read_records(str(path))
        assert truncated
        assert [r["i"] for r in records] == [0]
        assert bad == 3  # the bad line and everything after it


class TestFsyncPolicy:
    def test_default_is_always(self, monkeypatch):
        monkeypatch.delenv(ENV_FSYNC, raising=False)
        assert fsync_policy() == "always"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(ENV_FSYNC, "batch")
        assert fsync_policy() == "batch"
        assert fsync_policy("off") == "off"  # explicit beats env

    def test_typo_raises(self):
        with pytest.raises(ValueError, match="unknown fsync policy"):
            fsync_policy("allways")

    def test_batch_fsyncs_on_interval_and_close(self, tmp_path,
                                                monkeypatch):
        calls = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync",
                            lambda fd: (calls.append(fd), real_fsync(fd)))
        journal = RunJournal(str(tmp_path / "j.jsonl"), fsync="batch")
        for index in range(BATCH_FSYNC_INTERVAL + 2):
            journal.record("tick", i=index)
        assert len(calls) == 1  # one interval crossed
        journal.close()
        assert len(calls) == 2  # close always syncs

    def test_off_never_fsyncs(self, tmp_path, monkeypatch):
        calls = []
        monkeypatch.setattr(os, "fsync", lambda fd: calls.append(fd))
        journal = RunJournal(str(tmp_path / "j.jsonl"), fsync="off")
        for index in range(3):
            journal.record("tick", i=index)
        journal.close()
        assert calls == []


class TestAppendFailure:
    def test_enospc_disables_and_counts_never_raises(self, tmp_path):
        journal = RunJournal(str(tmp_path / "j.jsonl"), fsync="off")
        arm_journal_enospc(journal, after=2)
        assert journal.record("a") and journal.record("b")
        with pytest.warns(RuntimeWarning, match="without crash-safety"):
            assert journal.append({"rec": "c"}) is False
        # Disabled for good: later appends are silent Falses, one error.
        assert journal.append({"rec": "d"}) is False
        assert journal.disabled and journal.errors == 1
        assert journal.records_written == 2
        # The prefix written before the fault is still fully readable.
        records, bad, truncated = read_records(journal.path)
        assert [r["rec"] for r in records] == ["a", "b"]
        assert not truncated

    def test_unwritable_directory_degrades(self, tmp_path):
        blocked = tmp_path / "file-not-dir"
        blocked.write_text("occupied")
        journal = RunJournal(str(blocked / "j.jsonl"))
        with pytest.warns(RuntimeWarning):
            assert journal.append({"rec": "a"}) is False
        assert journal.disabled and journal.errors == 1

    def test_lazy_open_costs_nothing_unused(self, tmp_path):
        path = tmp_path / "never.jsonl"
        journal = RunJournal(str(path))
        journal.close()
        assert not path.exists()
