"""Replacement-policy edge cases for the O(1) ordered-dict Cache.

The rewrite from per-way LRU stamps to dict insertion order (see
``repro.memory.cache``) is only cycle-exact if the three policies keep
their distinct refresh rules: LRU reorders on probe *and* fill, FIFO only
on fill, and random never.  These tests pin those rules at the eviction
level, where a mistake would silently change every miss pattern.
"""

import pytest

from repro.memory.cache import Cache, EvictedLine, REPLACEMENT_POLICIES
from repro.memory.config import CacheConfig

#: One-set geometry so every address contends: 4 lines of 32B, 4-way.
ONE_SET = CacheConfig(size=128, assoc=4, line_size=32)

A, B, C, D, E, F = (i * 32 for i in range(6))  # distinct lines, same set


def fill_abcd(cache):
    for addr in (A, B, C, D):
        assert cache.fill(addr) is None  # warming an empty set evicts nothing
    return cache


class TestProbeRefreshDivergence:
    """The same probe sequence must evict differently under LRU vs FIFO."""

    def test_lru_probe_protects_oldest(self):
        cache = fill_abcd(Cache(ONE_SET, policy="lru"))
        cache.probe(A)  # refresh A: order becomes B, C, D, A
        victim = cache.fill(E)
        assert victim.line_addr == Cache(ONE_SET).line_addr(B)
        assert cache.contains(A)

    def test_fifo_probe_does_not_refresh(self):
        cache = fill_abcd(Cache(ONE_SET, policy="fifo"))
        cache.probe(A)  # FIFO ignores probes: order stays A, B, C, D
        victim = cache.fill(E)
        assert victim.line_addr == Cache(ONE_SET).line_addr(A)
        assert not cache.contains(A)

    def test_fifo_refill_does_refresh(self):
        """A merged re-fill is FIFO's one reordering event."""
        cache = fill_abcd(Cache(ONE_SET, policy="fifo"))
        assert cache.fill(A) is None  # re-fill: order becomes B, C, D, A
        victim = cache.fill(E)
        assert victim.line_addr == Cache(ONE_SET).line_addr(B)
        assert cache.contains(A)

    def test_write_probe_keeps_dirty_through_lru_refresh(self):
        cache = fill_abcd(Cache(ONE_SET, policy="lru"))
        cache.probe(A, is_write=True)
        cache.probe(A)  # clean re-probe must not launder the dirty bit
        assert cache.is_dirty(A)
        cache.probe(B)
        cache.probe(C)
        cache.probe(D)
        victim = cache.fill(E)  # A is now oldest again
        assert victim == EvictedLine(Cache(ONE_SET).line_addr(A), True)


class TestRandomDeterminism:
    """Seeded random replacement must replay identically, and its victim
    draw indexes pure insertion order (probes never reorder)."""

    def _evictions(self, seed, rounds=50):
        cache = Cache(ONE_SET, policy="random", seed=seed)
        fill_abcd(cache)
        out = []
        for i in range(rounds):
            cache.probe(A)  # must not perturb the victim sequence
            victim = cache.fill(E + i * 32)
            out.append(victim.line_addr)
        return out

    def test_identical_seeds_identical_evictions(self):
        assert self._evictions(seed=7) == self._evictions(seed=7)

    def test_different_seeds_diverge(self):
        runs = {tuple(self._evictions(seed=s)) for s in (1, 2, 3, 4)}
        assert len(runs) > 1

    def test_probes_do_not_perturb_victim_choice(self):
        quiet = Cache(ONE_SET, policy="random", seed=11)
        noisy = Cache(ONE_SET, policy="random", seed=11)
        fill_abcd(quiet)
        fill_abcd(noisy)
        for _ in range(10):
            noisy.probe(B)
            noisy.probe(C, is_write=True)
        assert quiet.fill(E).line_addr == noisy.fill(E).line_addr

    def test_zero_seed_still_deterministic(self):
        # seed 0 falls back to a fixed nonzero LCG state, not wall clock
        one = Cache(ONE_SET, policy="random", seed=0)
        two = Cache(ONE_SET, policy="random", seed=0)
        fill_abcd(one)
        fill_abcd(two)
        assert one.fill(E).line_addr == two.fill(E).line_addr


class TestInvalidateOrdering:
    """Invalidation frees a way without disturbing the survivors' order."""

    @pytest.mark.parametrize("policy", ["lru", "fifo"])
    def test_eviction_order_after_invalidate(self, policy):
        cache = fill_abcd(Cache(ONE_SET, policy=policy))
        assert cache.invalidate(B)
        assert cache.fill(E) is None  # freed way absorbs the fill
        # Survivors still evict oldest-first: A, then C, then D.
        assert cache.fill(F).line_addr == Cache(ONE_SET).line_addr(A)
        next_victim = cache.fill(F + 32)
        assert next_victim.line_addr == Cache(ONE_SET).line_addr(C)

    def test_invalidate_then_refill_moves_to_newest(self):
        cache = fill_abcd(Cache(ONE_SET, policy="lru"))
        cache.invalidate(A)
        cache.fill(A)  # back in, but now the youngest line
        victim = cache.fill(E)
        assert victim.line_addr == Cache(ONE_SET).line_addr(B)

    def test_invalidate_missing_line_is_noop(self):
        cache = fill_abcd(Cache(ONE_SET, policy="lru"))
        assert not cache.invalidate(E)
        assert cache.resident_lines() == 4
        victim = cache.fill(E)
        assert victim.line_addr == Cache(ONE_SET).line_addr(A)


class TestPolicyRegistry:
    def test_policies_exported(self):
        assert REPLACEMENT_POLICIES == ("lru", "fifo", "random")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown replacement policy"):
            Cache(ONE_SET, policy="mru")
