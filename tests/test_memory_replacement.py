"""Replacement-policy edge cases and differential suites for the Cache.

The rewrite from per-way LRU stamps to dict insertion order (see
``repro.memory.cache``) is only cycle-exact if the three policies keep
their distinct refresh rules: LRU reorders on probe *and* fill, FIFO only
on fill, and random never.  These tests pin those rules at the eviction
level, where a mistake would silently change every miss pattern.

The registry additions (tree-PLRU, SRRIP, BRRIP) are checked the same way
the dict-order family is checked in ``test_properties``: an independent
functional reference model per policy (a bit-tree for PLRU, a counter
model for RRIP) driven through hypothesis- and seed-generated
probe/fill/invalidate interleavings, asserting victim-for-victim
agreement after every operation.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.cache import Cache, EvictedLine, REPLACEMENT_POLICIES
from repro.memory.config import CacheConfig
from repro.memory.replacement import (
    DEFAULT_REPLACEMENT_SEED,
    available_policies,
    create_policy,
    derive_seed,
    get_policy_class,
)

#: One-set geometry so every address contends: 4 lines of 32B, 4-way.
ONE_SET = CacheConfig(size=128, assoc=4, line_size=32)

A, B, C, D, E, F = (i * 32 for i in range(6))  # distinct lines, same set


def fill_abcd(cache):
    for addr in (A, B, C, D):
        assert cache.fill(addr) is None  # warming an empty set evicts nothing
    return cache


class TestProbeRefreshDivergence:
    """The same probe sequence must evict differently under LRU vs FIFO."""

    def test_lru_probe_protects_oldest(self):
        cache = fill_abcd(Cache(ONE_SET, policy="lru"))
        cache.probe(A)  # refresh A: order becomes B, C, D, A
        victim = cache.fill(E)
        assert victim.line_addr == Cache(ONE_SET).line_addr(B)
        assert cache.contains(A)

    def test_fifo_probe_does_not_refresh(self):
        cache = fill_abcd(Cache(ONE_SET, policy="fifo"))
        cache.probe(A)  # FIFO ignores probes: order stays A, B, C, D
        victim = cache.fill(E)
        assert victim.line_addr == Cache(ONE_SET).line_addr(A)
        assert not cache.contains(A)

    def test_fifo_refill_does_refresh(self):
        """A merged re-fill is FIFO's one reordering event."""
        cache = fill_abcd(Cache(ONE_SET, policy="fifo"))
        assert cache.fill(A) is None  # re-fill: order becomes B, C, D, A
        victim = cache.fill(E)
        assert victim.line_addr == Cache(ONE_SET).line_addr(B)
        assert cache.contains(A)

    def test_write_probe_keeps_dirty_through_lru_refresh(self):
        cache = fill_abcd(Cache(ONE_SET, policy="lru"))
        cache.probe(A, is_write=True)
        cache.probe(A)  # clean re-probe must not launder the dirty bit
        assert cache.is_dirty(A)
        cache.probe(B)
        cache.probe(C)
        cache.probe(D)
        victim = cache.fill(E)  # A is now oldest again
        assert victim == EvictedLine(Cache(ONE_SET).line_addr(A), True)


class TestRandomDeterminism:
    """Seeded random replacement must replay identically, and its victim
    draw indexes pure insertion order (probes never reorder)."""

    def _evictions(self, seed, rounds=50):
        cache = Cache(ONE_SET, policy="random", seed=seed)
        fill_abcd(cache)
        out = []
        for i in range(rounds):
            cache.probe(A)  # must not perturb the victim sequence
            victim = cache.fill(E + i * 32)
            out.append(victim.line_addr)
        return out

    def test_identical_seeds_identical_evictions(self):
        assert self._evictions(seed=7) == self._evictions(seed=7)

    def test_different_seeds_diverge(self):
        runs = {tuple(self._evictions(seed=s)) for s in (1, 2, 3, 4)}
        assert len(runs) > 1

    def test_probes_do_not_perturb_victim_choice(self):
        quiet = Cache(ONE_SET, policy="random", seed=11)
        noisy = Cache(ONE_SET, policy="random", seed=11)
        fill_abcd(quiet)
        fill_abcd(noisy)
        for _ in range(10):
            noisy.probe(B)
            noisy.probe(C, is_write=True)
        assert quiet.fill(E).line_addr == noisy.fill(E).line_addr

    def test_zero_seed_still_deterministic(self):
        # seed 0 falls back to a fixed nonzero LCG state, not wall clock
        one = Cache(ONE_SET, policy="random", seed=0)
        two = Cache(ONE_SET, policy="random", seed=0)
        fill_abcd(one)
        fill_abcd(two)
        assert one.fill(E).line_addr == two.fill(E).line_addr


class TestInvalidateOrdering:
    """Invalidation frees a way without disturbing the survivors' order."""

    @pytest.mark.parametrize("policy", ["lru", "fifo"])
    def test_eviction_order_after_invalidate(self, policy):
        cache = fill_abcd(Cache(ONE_SET, policy=policy))
        assert cache.invalidate(B)
        assert cache.fill(E) is None  # freed way absorbs the fill
        # Survivors still evict oldest-first: A, then C, then D.
        assert cache.fill(F).line_addr == Cache(ONE_SET).line_addr(A)
        next_victim = cache.fill(F + 32)
        assert next_victim.line_addr == Cache(ONE_SET).line_addr(C)

    def test_invalidate_then_refill_moves_to_newest(self):
        cache = fill_abcd(Cache(ONE_SET, policy="lru"))
        cache.invalidate(A)
        cache.fill(A)  # back in, but now the youngest line
        victim = cache.fill(E)
        assert victim.line_addr == Cache(ONE_SET).line_addr(B)

    def test_invalidate_missing_line_is_noop(self):
        cache = fill_abcd(Cache(ONE_SET, policy="lru"))
        assert not cache.invalidate(E)
        assert cache.resident_lines() == 4
        victim = cache.fill(E)
        assert victim.line_addr == Cache(ONE_SET).line_addr(A)


class TestPolicyRegistry:
    def test_policies_exported(self):
        # Historical trio first (their position is part of the digit-exact
        # contract), registry additions after.
        assert REPLACEMENT_POLICIES[:3] == ("lru", "fifo", "random")
        assert set(REPLACEMENT_POLICIES) == {
            "lru", "fifo", "random", "plru", "rrip", "brrip"}
        assert REPLACEMENT_POLICIES == available_policies()

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown replacement policy"):
            Cache(ONE_SET, policy="mru")

    def test_get_policy_class_roundtrip(self):
        for name in available_policies():
            assert get_policy_class(name).name == name

    def test_dict_order_flags_match_historical_semantics(self):
        lru = create_policy("lru", ONE_SET)
        fifo = create_policy("fifo", ONE_SET)
        rand = create_policy("random", ONE_SET)
        assert lru.dict_order and lru.refresh_on_hit and lru.refresh_on_fill
        assert fifo.dict_order and not fifo.refresh_on_hit
        assert fifo.refresh_on_fill
        assert rand.dict_order and rand.random_victim
        assert not rand.refresh_on_hit and not rand.refresh_on_fill
        for name in ("plru", "rrip", "brrip"):
            assert not create_policy(name, ONE_SET).dict_order

    def test_plru_requires_pow2_assoc(self):
        with pytest.raises(ValueError, match="power-of-two"):
            Cache(CacheConfig(size=96, assoc=3, line_size=32), policy="plru")

    def test_hierarchy_config_validates_policy(self):
        from repro.memory.config import HierarchyConfig
        with pytest.raises(ValueError, match="unknown replacement policy"):
            HierarchyConfig(l1=ONE_SET, l2=CacheConfig(size=1024, assoc=4),
                            replacement_policy="mru")


class TestDeriveSeed:
    def test_default_seed_is_historical_constant(self):
        assert derive_seed(0) == DEFAULT_REPLACEMENT_SEED
        assert DEFAULT_REPLACEMENT_SEED == 12345

    def test_nonzero_seeds_diverge_and_replay(self):
        seeds = {derive_seed(s) for s in range(1, 20)}
        assert len(seeds) == 19
        assert DEFAULT_REPLACEMENT_SEED not in seeds
        assert derive_seed(7) == derive_seed(7)
        assert all(s != 0 for s in seeds)

    def test_salt_separates_streams(self):
        assert derive_seed(5, salt=1) != derive_seed(5, salt=2)


# ---------------------------------------------------------------------------
# Functional reference models for the registry additions.  Deliberately
# written in a different style from the production policies (lists of bits
# vs packed ints, explicit way scans vs dict bookkeeping) so a shared bug
# would have to be invented twice.
# ---------------------------------------------------------------------------

class _RefTreePLRU:
    """Bit-tree PLRU reference: one list of direction booleans per set."""

    def __init__(self, num_sets, assoc):
        self.assoc = assoc
        self.bits = [[False] * max(assoc - 1, 0) for _ in range(num_sets)]
        self.ways = [[None] * assoc for _ in range(num_sets)]

    def touch(self, s, line):
        way = self.ways[s].index(line)
        node = (self.assoc - 1) + way
        while node > 0:
            parent = (node - 1) // 2
            # Point the tree away from the touched child.
            self.bits[s][parent] = (node == 2 * parent + 1)
            node = parent

    def fill(self, s, line):
        way = self.ways[s].index(None)
        self.ways[s][way] = line
        self.touch(s, line)

    def victim(self, s):
        node = 0
        while node < self.assoc - 1:
            node = 2 * node + 1 + (1 if self.bits[s][node] else 0)
        way = node - (self.assoc - 1)
        line = self.ways[s][way]
        self.ways[s][way] = None
        return line

    def invalidate(self, s, line):
        if line in self.ways[s]:
            self.ways[s][self.ways[s].index(line)] = None


class _RefRRIP:
    """RRIP counter reference: explicit (line, rrpv) list per set."""

    def __init__(self, num_sets, insert_rrpv=2, max_rrpv=3):
        self.entries = [[] for _ in range(num_sets)]  # [line, rrpv] pairs
        self.insert_rrpv = insert_rrpv
        self.max_rrpv = max_rrpv

    def fill(self, s, line, rrpv=None):
        self.entries[s].append(
            [line, self.insert_rrpv if rrpv is None else rrpv])

    def touch(self, s, line):
        for entry in self.entries[s]:
            if entry[0] == line:
                entry[1] = 0
                return

    def victim(self, s):
        while True:
            for i, (line, rrpv) in enumerate(self.entries[s]):
                if rrpv >= self.max_rrpv:
                    del self.entries[s][i]
                    return line
            for entry in self.entries[s]:
                entry[1] += 1

    def invalidate(self, s, line):
        self.entries[s] = [e for e in self.entries[s] if e[0] != line]


class TestTreePLRUSemantics:
    """Hand-checked 4-way PLRU victim walks on a one-set cache."""

    def test_untouched_set_evicts_way0(self):
        cache = Cache(ONE_SET, policy="plru")
        # Fill order A B C D touches each way in turn; after D the tree
        # points at way 2's sibling pair... verify against the walk: fills
        # touch 0,1,2,3 -> root bit ends 0 (away from right half after D?)
        # Rather than hand-derive, assert the invariant that the victim is
        # one of the resident lines and PLRU != strict LRU on this stream.
        fill_abcd(cache)
        victim = cache.fill(E)
        assert victim.line_addr in {a >> 5 for a in (A, B, C, D)}

    def test_plru_victim_walk_matches_bit_tree(self):
        # 2-way PLRU degenerates to true LRU: one bit per set.
        config = CacheConfig(size=64, assoc=2, line_size=32)
        cache = Cache(config, policy="plru")
        cache.fill(0x0)
        cache.fill(0x40)
        cache.probe(0x0)  # touch way 0 -> bit points at way 1
        assert cache.fill(0x80).line_addr == 0x40 >> 5
        assert cache.contains(0x0)

    def test_probe_protects_recently_touched_way(self):
        cache = fill_abcd(Cache(ONE_SET, policy="plru"))
        cache.probe(A)
        victim = cache.fill(E)
        assert victim.line_addr != Cache(ONE_SET).line_addr(A)
        assert cache.contains(A)

    def test_invalidate_frees_way_for_next_fill(self):
        cache = fill_abcd(Cache(ONE_SET, policy="plru"))
        assert cache.invalidate(B)
        assert cache.fill(E) is None  # freed way absorbs the fill
        assert cache.resident_lines() == 4

    def test_flush_resets_tree_state(self):
        cache = fill_abcd(Cache(ONE_SET, policy="plru"))
        cache.probe(D)
        cache.flush()
        rerun = fill_abcd(Cache(ONE_SET, policy="plru"))
        fill_abcd(cache)
        assert cache.fill(E).line_addr == rerun.fill(E).line_addr


class TestRRIPSemantics:
    def test_insertion_is_distant_not_immediate(self):
        # SRRIP inserts at RRPV 2: untouched lines age out together, first
        # in way order — so the first fill (A) goes before later ones.
        cache = fill_abcd(Cache(ONE_SET, policy="rrip"))
        assert cache.fill(E).line_addr == Cache(ONE_SET).line_addr(A)

    def test_hit_promotes_to_near_immediate(self):
        cache = fill_abcd(Cache(ONE_SET, policy="rrip"))
        cache.probe(A)  # A -> RRPV 0; B is now the first distant line
        assert cache.fill(E).line_addr == Cache(ONE_SET).line_addr(B)
        assert cache.contains(A)

    def test_scan_resistance_vs_lru(self):
        """A one-pass scan cannot displace the reused working set: the
        scanned lines insert distant and age out first, while LRU would
        have evicted the (older) reused lines."""
        config = CacheConfig(size=128, assoc=4, line_size=32)
        rrip = Cache(config, policy="rrip")
        lru = Cache(config, policy="lru")
        for cache in (rrip, lru):
            cache.fill(A)
            cache.fill(B)
            for _ in range(3):      # demonstrated reuse
                cache.probe(A)
                cache.probe(B)
            cache.fill(C)           # the scan...
            cache.fill(D)
            cache.fill(E)           # ...overflows the set
            cache.fill(F)
        assert rrip.contains(A) and rrip.contains(B)
        assert not (lru.contains(A) and lru.contains(B))

    def test_brrip_inserts_mostly_distant(self):
        # BRRIP at its default EPSILON inserts nearly everything at max
        # RRPV: a fresh fill is evicted ahead of a previously aged one.
        cache = fill_abcd(Cache(ONE_SET, policy="brrip", seed=3))
        pol = cache.policy_impl
        rrpvs = [pol._rrpv[0][a >> 5] for a in (A, B, C, D)]
        assert rrpvs.count(3) >= 3

    def test_brrip_deterministic_per_seed(self):
        def victims(seed):
            cache = fill_abcd(Cache(ONE_SET, policy="brrip", seed=seed))
            return [cache.fill(E + 32 * i).line_addr for i in range(8)]
        assert victims(9) == victims(9)

    def test_invalidate_drops_counter(self):
        cache = fill_abcd(Cache(ONE_SET, policy="rrip"))
        cache.invalidate(A)
        assert (A >> 5) not in cache.policy_impl._rrpv[0]
        assert cache.fill(E) is None


# ---------------------------------------------------------------------------
# Differential drivers: production Cache vs the reference models above, over
# generated probe/fill/invalidate interleavings.
# ---------------------------------------------------------------------------

def _drive_plru_differential(num_sets, assoc, ops):
    line_size = 32
    config = CacheConfig(size=num_sets * assoc * line_size, assoc=assoc,
                         line_size=line_size)
    cache = Cache(config, policy="plru")
    model = _RefTreePLRU(num_sets, assoc)
    resident = [set() for _ in range(num_sets)]
    for kind, slot in ops:
        addr = slot * line_size
        line = addr >> 5
        s = line & (num_sets - 1)
        if kind == "probe":
            hit = cache.probe(addr)
            assert hit == (line in resident[s])
            if hit:
                model.touch(s, line)
        elif kind == "inval":
            was = cache.invalidate(addr)
            assert was == (line in resident[s])
            if was:
                model.invalidate(s, line)
                resident[s].discard(line)
        else:  # fill
            victim = cache.fill(addr)
            if line in resident[s]:
                assert victim is None
                model.touch(s, line)
            else:
                if len(resident[s]) >= assoc:
                    expected = model.victim(s)
                    assert victim is not None, \
                        f"cache kept {line}, model evicted {expected}"
                    assert victim.line_addr == expected
                    resident[s].discard(expected)
                else:
                    assert victim is None
                model.fill(s, line)
                resident[s].add(line)


def _drive_rrip_differential(num_sets, assoc, ops):
    line_size = 32
    config = CacheConfig(size=num_sets * assoc * line_size, assoc=assoc,
                         line_size=line_size)
    cache = Cache(config, policy="rrip")
    model = _RefRRIP(num_sets)
    resident = [set() for _ in range(num_sets)]
    for kind, slot in ops:
        addr = slot * line_size
        line = addr >> 5
        s = line & (num_sets - 1)
        if kind == "probe":
            if cache.probe(addr):
                model.touch(s, line)
        elif kind == "inval":
            if cache.invalidate(addr):
                model.invalidate(s, line)
                resident[s].discard(line)
        else:
            victim = cache.fill(addr)
            if line in resident[s]:
                assert victim is None
                model.touch(s, line)
            else:
                if len(resident[s]) >= assoc:
                    expected = model.victim(s)
                    assert victim is not None
                    assert victim.line_addr == expected
                    resident[s].discard(expected)
                else:
                    assert victim is None
                model.fill(s, line)
                resident[s].add(line)


_OPS = st.lists(
    st.tuples(st.sampled_from(["probe", "fill", "fill", "inval"]),
              st.integers(0, 31)),
    min_size=1, max_size=120)


class TestDifferentialPLRU:
    @given(ops=_OPS)
    @settings(max_examples=60, deadline=None)
    def test_plru_victims_match_bit_tree_4way(self, ops):
        _drive_plru_differential(num_sets=4, assoc=4, ops=ops)

    @given(ops=_OPS)
    @settings(max_examples=40, deadline=None)
    def test_plru_victims_match_bit_tree_8way(self, ops):
        _drive_plru_differential(num_sets=2, assoc=8, ops=ops)

    @pytest.mark.slow
    def test_plru_seeded_sweep(self):
        for seed in range(200):
            rng = random.Random(seed)
            num_sets = rng.choice([1, 2, 4, 8])
            assoc = rng.choice([2, 4, 8])
            ops = [(rng.choice(["probe", "fill", "fill", "inval"]),
                    rng.randrange(0, 4 * num_sets * assoc))
                   for _ in range(rng.randint(30, 200))]
            _drive_plru_differential(num_sets, assoc, ops)


class TestDifferentialRRIP:
    @given(ops=_OPS)
    @settings(max_examples=60, deadline=None)
    def test_rrip_victims_match_counter_model_4way(self, ops):
        _drive_rrip_differential(num_sets=4, assoc=4, ops=ops)

    @given(ops=_OPS)
    @settings(max_examples=40, deadline=None)
    def test_rrip_victims_match_counter_model_nonpow2(self, ops):
        # RRIP has no pow2 restriction; exercise a 3-way set.
        _drive_rrip_differential(num_sets=4, assoc=3, ops=ops)

    @pytest.mark.slow
    def test_rrip_seeded_sweep(self):
        for seed in range(200):
            rng = random.Random(seed)
            num_sets = rng.choice([1, 2, 4, 8])
            assoc = rng.randint(1, 8)
            ops = [(rng.choice(["probe", "fill", "fill", "inval"]),
                    rng.randrange(0, 4 * num_sets * assoc))
                   for _ in range(rng.randint(30, 200))]
            _drive_rrip_differential(num_sets, assoc, ops)

    @pytest.mark.slow
    def test_brrip_tracks_srrip_reference_with_lcg_insertions(self):
        """BRRIP == the RRIP reference when the reference replays the same
        LCG insertion dice — victim-for-victim, across seeds."""
        line_size = 32
        for seed in (1, 7, 12345, 99991):
            config = CacheConfig(size=4 * 4 * line_size, assoc=4,
                                 line_size=line_size)
            cache = Cache(config, policy="brrip", seed=seed)
            model = _RefRRIP(4)
            state = seed or 1
            resident = [set() for _ in range(4)]
            rng = random.Random(seed)
            for _ in range(400):
                slot = rng.randrange(0, 64)
                line = slot
                s = line & 3
                if rng.random() < 0.35 and cache.probe(slot * line_size):
                    model.touch(s, line)
                    continue
                victim = cache.fill(slot * line_size)
                if line in resident[s]:
                    assert victim is None
                    model.touch(s, line)
                    continue
                state = (state * 1103515245 + 12345) & 0x7FFFFFFF
                rrpv = 2 if state % 32 == 0 else 3
                if len(resident[s]) >= 4:
                    expected = model.victim(s)
                    assert victim.line_addr == expected
                    resident[s].discard(expected)
                else:
                    assert victim is None
                model.fill(s, line, rrpv=rrpv)
                resident[s].add(line)
