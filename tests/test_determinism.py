"""End-to-end determinism: identical inputs give identical simulations.

Every experiment in EXPERIMENTS.md depends on this — results must be
reproducible bit-for-bit across runs of the same seedled configuration.
"""

import pytest

from repro.coherence import AccessControlMethod, run_access_control_experiment
from repro.harness import MACHINES, build_core
from repro.harness.runner import bar_config, run_bar
from repro.workloads import spec92_workload
from repro.workloads.parallel import PARALLEL_KERNELS


def run_core(machine, bench="compress", informing=None, n=5000):
    core = build_core(MACHINES[machine], informing=informing)
    stats = core.run(spec92_workload(bench).stream(4 * n), max_app_insts=n)
    return (stats.cycles, stats.app_instructions, stats.handler_instructions,
            stats.handler_invocations, core.hierarchy.stats.l1_misses)


class TestCoreDeterminism:
    @pytest.mark.parametrize("machine", ["ooo", "inorder"])
    def test_baseline_repeatable(self, machine):
        assert run_core(machine) == run_core(machine)

    @pytest.mark.parametrize("machine", ["ooo", "inorder"])
    def test_informing_repeatable(self, machine):
        from tests.helpers import trap_config
        a = run_core(machine, informing=trap_config(n=10))
        b = run_core(machine, informing=trap_config(n=10))
        assert a == b

    def test_run_bar_repeatable(self):
        a = run_bar("su2cor", "inorder", bar_config("S10"), 4000, 1000)
        b = run_bar("su2cor", "inorder", bar_config("S10"), 4000, 1000)
        assert a.cycles == b.cycles
        assert a.handler_invocations == b.handler_invocations


class TestCoherenceDeterminism:
    @pytest.mark.parametrize("method", list(AccessControlMethod))
    def test_methods_repeatable(self, method):
        kernel = PARALLEL_KERNELS["mixed"]
        a = run_access_control_experiment(kernel, method)
        b = run_access_control_experiment(kernel, method)
        assert a.execution_time == b.execution_time
        assert a.remote_invalidations == b.remote_invalidations


class TestSeedOffset:
    """The --seed CLI path: offset 0 is bit-identical to the historical
    default; any other offset re-rolls the generators."""

    def test_default_seed_path_unchanged(self):
        base = spec92_workload("compress")
        explicit = spec92_workload("compress", seed_offset=0)
        assert explicit.spec == base.spec
        a = [(i.op, i.addr, i.pc) for i in base.stream(2000)]
        b = [(i.op, i.addr, i.pc) for i in explicit.stream(2000)]
        assert a == b

    def test_offset_changes_stream(self):
        base = [(i.op, i.addr, i.pc)
                for i in spec92_workload("compress").stream(2000)]
        offset = [(i.op, i.addr, i.pc)
                  for i in spec92_workload("compress",
                                           seed_offset=7).stream(2000)]
        assert base != offset

    def test_offset_is_deterministic(self):
        a = run_bar("ora", "inorder", bar_config("N"), 2000, 500, seed=3)
        b = run_bar("ora", "inorder", bar_config("N"), 2000, 500, seed=3)
        assert a == b

    def test_run_bar_default_seed_matches_unseeded(self):
        seeded = run_bar("ora", "inorder", bar_config("N"), 2000, 500,
                         seed=0)
        unseeded = run_bar("ora", "inorder", bar_config("N"), 2000, 500)
        assert seeded == unseeded


class TestStreamIndependence:
    def test_consuming_one_stream_does_not_affect_another(self):
        workload = spec92_workload("alvinn")
        first = [(i.op, i.addr, i.pc) for i in workload.stream(2000)]
        # A second stream from the same workload object restarts cleanly.
        second = [(i.op, i.addr, i.pc) for i in workload.stream(2000)]
        assert first == second
