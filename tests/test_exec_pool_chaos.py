"""Process-pool chaos: dead workers, transient worker faults, and
in-simulation invariant violations arriving through the pool."""

import json

import pytest

from repro.exec import CollectingSink, ExecOptions, JobRunner, SimJob
from repro.sanitize import InvariantViolation
from repro.sanitize.chaos import CHAOS_DIR_ENV, chaos_execute


def make_job(name, seed=0):
    return SimJob.bar(benchmark=name, machine="m", label=f"L-{name}",
                      instructions=1, warmup=0, seed=seed)


def options(**overrides):
    overrides.setdefault("jobs", 1)
    overrides.setdefault("cache", False)
    overrides.setdefault("backoff", 0.01)
    return ExecOptions(**overrides)


class TestWorkerDeath:
    def test_sigkilled_worker_falls_back_to_serial(self):
        """A SIGKILLed worker (the OOM-kill shape) poisons the pool; the
        runner must finish every job anyway, on the serial path."""
        jobs = [make_job("ok-a"), make_job("kill-1"), make_job("ok-b"),
                make_job("ok-c")]
        sink = CollectingSink()
        runner = JobRunner(options(jobs=2), execute=chaos_execute,
                           sinks=[sink])
        results = runner.run(jobs)

        assert all(r is not None for r in results)
        assert [r["label"] for r in results] == [j.label for j in jobs]
        assert runner.stats.pool_breaks == 1
        assert "pool_broken" in sink.names()
        assert runner.stats.finished == len(jobs)

    def test_pool_broken_event_in_trace(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        jobs = [make_job("kill-1"), make_job("ok-a")]
        runner = JobRunner(options(jobs=2, trace_path=str(trace)),
                           execute=chaos_execute)
        runner.run(jobs)
        events = [json.loads(line) for line in
                  trace.read_text().splitlines()]
        broken = [e for e in events if e["event"] == "pool_broken"]
        assert len(broken) == 1
        assert "BrokenProcessPool" in broken[0]["error"]

    def test_serial_mode_never_breaks(self):
        """The kill payload only fires inside a pool worker: jobs=1 runs
        in the parent and must complete normally."""
        runner = JobRunner(options(jobs=1), execute=chaos_execute)
        results = runner.run([make_job("kill-1"), make_job("ok-a")])
        assert [r["ok"] for r in results] == [True, True]
        assert runner.stats.pool_breaks == 0


class TestTransientWorkerFault:
    def test_flaky_worker_retried_in_pool(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CHAOS_DIR_ENV, str(tmp_path))
        sink = CollectingSink()
        jobs = [make_job("flaky-once-a"), make_job("ok-a")]
        runner = JobRunner(options(jobs=2), execute=chaos_execute,
                           sinks=[sink])
        results = runner.run(jobs)
        assert [r["ok"] for r in results] == [True, True]
        assert runner.stats.retries == 1
        assert "retried" in sink.names()

    def test_retry_budget_survives_pool_fallback(self, tmp_path,
                                                 monkeypatch):
        """Attempt counts carry into the serial fallback: a job that was
        already flaky in the pool still succeeds within budget."""
        monkeypatch.setenv(CHAOS_DIR_ENV, str(tmp_path))
        jobs = [make_job("kill-1"), make_job("flaky-once-b"),
                make_job("ok-a")]
        runner = JobRunner(options(jobs=2, retries=2),
                           execute=chaos_execute)
        results = runner.run(jobs)
        assert all(r is not None for r in results)
        assert runner.stats.pool_breaks == 1


class TestViolationThroughTheGrid:
    @pytest.mark.parametrize("jobs_opt", [1, 2])
    def test_violation_becomes_structured_record(self, jobs_opt):
        """An InvariantViolation in one cell must not abort the grid: it
        becomes a per-job failure record and the rest of the results
        arrive intact — serial and parallel alike."""
        sink = CollectingSink()
        jobs = [make_job("ok-a"), make_job("violate-1"), make_job("ok-b")]
        runner = JobRunner(options(jobs=jobs_opt), execute=chaos_execute,
                           sinks=[sink])
        results = runner.run(jobs)

        assert results[0]["ok"] and results[2]["ok"]
        record = results[1]
        assert record["status"] == "invariant_violation"
        assert record["violation"]["invariant"] == "mshr.no_leaked_entries"
        assert record["violation"]["cycle"] == 1234
        assert record["violation"]["snapshot"]["mshr_id"] == 3
        assert record["job"]["benchmark"] == "violate-1"
        assert runner.stats.violations == 1
        assert runner.stats.failed == 1

        failed = [e for e in sink.events if e.event == "failed"]
        assert len(failed) == 1
        assert failed[0].violation["invariant"] == "mshr.no_leaked_entries"

    def test_violation_survives_the_pool_boundary(self):
        """The violation pickles across the worker boundary with its
        structured fields intact (``__reduce__``), so the parallel path
        sees a real InvariantViolation, not a bare RuntimeError."""
        sink = CollectingSink()
        runner = JobRunner(options(jobs=2), execute=chaos_execute,
                           sinks=[sink])
        results = runner.run([make_job("violate-1"), make_job("ok-a")])
        assert results[0]["status"] == "invariant_violation"
        assert results[0]["violation"]["component"] == "MSHR"
        assert results[1]["ok"]

    def test_violation_record_is_json_serializable(self):
        runner = JobRunner(options(), execute=chaos_execute)
        results = runner.run([make_job("violate-1")])
        json.dumps(results[0])  # the grid export path must not choke
