"""Tracing through the exec engine: serial and pool propagation, the
unsampled zero-span path, pool-broken re-parenting, and flight dumps."""

import json
import os

import pytest

from repro.exec import CollectingSink, ExecOptions, JobRunner, SimJob
from repro.harness.spans_cli import build_tree, group_by_trace
from repro.sanitize.chaos import chaos_execute
from repro.trace import ENV_PARENT, ENV_SAMPLE, ENV_SPANS, clear_ambient
from repro.trace.exporters import read_spans


@pytest.fixture(autouse=True)
def _clean_trace_env(monkeypatch):
    for var in (ENV_PARENT, ENV_SAMPLE, ENV_SPANS,
                "REPRO_TRACE_FLIGHT_DIR"):
        monkeypatch.delenv(var, raising=False)
    clear_ambient()
    yield
    clear_ambient()


def bar_job(name="compress", machine="ooo", label="S10", seed=0):
    return SimJob.bar(benchmark=name, machine=machine, label=label,
                      instructions=800, warmup=200, seed=seed)


def echo_execute(job):
    return {"label": job.label}


def options(**overrides):
    overrides.setdefault("jobs", 1)
    overrides.setdefault("cache", False)
    overrides.setdefault("backoff", 0.01)
    return ExecOptions(**overrides)


def one_tree(path):
    """Read a spans file, assert a single connected trace, return it."""
    records, bad = read_spans(path)
    assert bad == 0
    groups = group_by_trace(records)
    assert len(groups) == 1, f"expected one trace, got {sorted(groups)}"
    tree = build_tree(next(iter(groups.values())))
    assert len(tree["roots"]) == 1, [r["name"] for r in tree["roots"]]
    return tree


class TestUnsampledIsSpanFree:
    def test_no_spans_artifact_and_no_span_field(self, tmp_path):
        trace = tmp_path / "telemetry.jsonl"
        runner = JobRunner(options(trace_path=str(trace),
                                   manifest_dir=str(tmp_path / "runs")),
                           execute=echo_execute)
        runner.run([bar_job("a"), bar_job("b")])
        assert runner.last_spans is None
        events = [json.loads(line) for line in
                  trace.read_text().splitlines()]
        assert all("span" not in e for e in events)
        spans_files = list(tmp_path.rglob("spans.jsonl"))
        assert spans_files == []


class TestSerialPropagation:
    def test_connected_tree_with_nested_sim_spans(self, tmp_path):
        trace = tmp_path / "telemetry.jsonl"
        runner = JobRunner(options(trace_sample=1.0,
                                   trace_path=str(trace),
                                   manifest_dir=str(tmp_path / "runs")))
        runner.run([bar_job(label="N"), bar_job(label="S10")])
        assert runner.last_spans is not None
        tree = one_tree(runner.last_spans)
        root = tree["roots"][0]
        assert root["name"] == "run"
        names = sorted(r["name"] for r in tree["by_id"].values())
        assert names.count("job") == 2
        assert names.count("sim.execute") == 2
        assert names.count("replay") == 2
        # jobs nest under the run; sim.execute nests under its job
        jobs = [r for r in tree["by_id"].values() if r["name"] == "job"]
        assert all(j["parent_id"] == root["span_id"] for j in jobs)
        sims = [r for r in tree["by_id"].values()
                if r["name"] == "sim.execute"]
        assert {s["parent_id"] for s in sims} <= {j["span_id"]
                                                  for j in jobs}
        assert all(j["attrs"]["mode"] == "serial" for j in jobs)

    def test_finished_telemetry_joins_spans(self, tmp_path):
        trace = tmp_path / "telemetry.jsonl"
        runner = JobRunner(options(trace_sample=1.0,
                                   trace_path=str(trace),
                                   spans_path=str(tmp_path / "s.jsonl")),
                           execute=echo_execute)
        runner.run([bar_job("a")])
        events = [json.loads(line) for line in
                  trace.read_text().splitlines()]
        finished = [e for e in events if e["event"] == "finished"]
        records, _ = read_spans(str(tmp_path / "s.jsonl"))
        job_span_ids = {r["span_id"] for r in records
                        if r["name"] == "job"}
        assert [e["span"] for e in finished] and \
            set(e["span"] for e in finished) <= job_span_ids

    def test_traced_results_digit_exact(self, tmp_path):
        jobs = [bar_job(label="N"), bar_job(label="S10")]
        plain = JobRunner(options()).run([bar_job(label="N"),
                                          bar_job(label="S10")])
        traced = JobRunner(options(
            trace_sample=1.0,
            spans_path=str(tmp_path / "s.jsonl"))).run(jobs)
        assert traced == plain


class TestPoolPropagation:
    def test_workers_join_the_run_trace(self, tmp_path):
        runner = JobRunner(options(jobs=2,
                                   manifest_dir=str(tmp_path / "runs"),
                                   trace_sample=1.0))
        runner.run([bar_job(label=label)
                    for label in ("N", "S1", "S10", "U10")])
        tree = one_tree(runner.last_spans)
        pids = {r["pid"] for r in tree["by_id"].values()}
        assert len(pids) >= 2, "no spans from pool workers"
        sims = [r for r in tree["by_id"].values()
                if r["name"] == "sim.execute"]
        assert len(sims) == 4
        assert any(r["pid"] != tree["roots"][0]["pid"] for r in sims)
        jobs = [r for r in tree["by_id"].values() if r["name"] == "job"]
        assert all(j["attrs"]["mode"] == "pool" for j in jobs)

    def test_env_restored_after_run(self, tmp_path):
        runner = JobRunner(options(jobs=2, trace_sample=1.0,
                                   spans_path=str(tmp_path / "s.jsonl")),
                           execute=echo_execute)
        runner.run([bar_job("a"), bar_job("b")])
        assert ENV_PARENT not in os.environ
        assert ENV_SPANS not in os.environ

    def test_pool_results_digit_exact_with_tracing(self, tmp_path):
        jobs = [bar_job(label=label) for label in ("N", "S10")]
        plain = JobRunner(options()).run(jobs)
        traced = JobRunner(options(
            jobs=2, trace_sample=1.0,
            spans_path=str(tmp_path / "s.jsonl"))).run(
                [bar_job(label=label) for label in ("N", "S10")])
        assert traced == plain


class TestPoolBrokenFallback:
    def test_fallback_jobs_reparent_and_flight_dumps(self, tmp_path,
                                                     monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_FLIGHT_DIR", str(tmp_path))
        spans_path = tmp_path / "s.jsonl"
        jobs = [SimJob.bar(benchmark=name, machine="m", label=f"L-{name}",
                           instructions=1, warmup=0, seed=0)
                for name in ("ok-a", "kill-1", "ok-b")]
        sink = CollectingSink()
        runner = JobRunner(options(jobs=2, trace_sample=1.0,
                                   spans_path=str(spans_path)),
                           execute=chaos_execute, sinks=[sink])
        results = runner.run(jobs)
        assert all(r is not None for r in results)
        assert runner.stats.pool_breaks == 1

        records, _ = read_spans(str(spans_path))
        tree = build_tree(records)
        root = tree["roots"][0]
        assert root["name"] == "run"
        job_spans = [r for r in records if r["name"] == "job"]
        # Orphaned pool spans are closed as errors; the serial re-run
        # re-parents every job to the same run span.
        modes = {r["attrs"]["mode"] for r in job_spans}
        assert "serial_fallback" in modes
        fallback = [r for r in job_spans
                    if r["attrs"]["mode"] == "serial_fallback"]
        assert all(r["parent_id"] == root["span_id"] for r in fallback)
        broken = [r for r in job_spans
                  if (r.get("attrs") or {}).get("pool_broken")]
        assert broken and all(r["status"] == "error" for r in broken)
        # same trace id across the break
        assert {r["trace_id"] for r in records} == {root["trace_id"]}

        dumps = list(tmp_path.glob("flight_pool_broken_*.json"))
        assert len(dumps) == 1
        payload = json.loads(dumps[0].read_text())
        kinds = {e["kind"] for e in payload["events"]}
        assert any(k.startswith("job.") for k in kinds)


class TestFlightDumpFaultClasses:
    def test_violation_dumps_once(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_FLIGHT_DIR", str(tmp_path))

        def violate(job):
            from repro.sanitize import InvariantViolation
            raise InvariantViolation("test.invariant", "L1D", 7, "boom")

        runner = JobRunner(options(), execute=violate)
        runner.run([SimJob.bar(benchmark="v", machine="m", label="V",
                               instructions=1, warmup=0, seed=0)])
        dumps = list(tmp_path.glob("flight_invariant_violation_*.json"))
        assert len(dumps) == 1

    def test_untraced_run_without_flight_dir_stays_clean(self, tmp_path,
                                                         monkeypatch):
        """No destination, no litter: a violation in a run without a
        run dir or REPRO_TRACE_FLIGHT_DIR must not write into cwd."""
        monkeypatch.chdir(tmp_path)

        def violate(job):
            from repro.sanitize import InvariantViolation
            raise InvariantViolation("test.invariant", "L1D", 7, "boom")

        runner = JobRunner(options(), execute=violate)
        runner.run([SimJob.bar(benchmark="v", machine="m", label="V",
                               instructions=1, warmup=0, seed=0)])
        assert list(tmp_path.glob("flight_*.json")) == []


class TestManifestLink:
    def test_manifest_records_spans_path(self, tmp_path):
        runner = JobRunner(options(trace_sample=1.0,
                                   manifest_dir=str(tmp_path / "runs")))
        runner.run([bar_job()])
        manifest = json.loads(open(runner.last_manifest).read())
        assert manifest["spans_path"] == runner.last_spans
        assert os.path.isfile(manifest["spans_path"])
        assert os.path.dirname(manifest["spans_path"]) == \
            os.path.dirname(runner.last_manifest)

    def test_untraced_manifest_has_null_spans_path(self, tmp_path):
        runner = JobRunner(options(manifest_dir=str(tmp_path / "runs")))
        runner.run([bar_job()])
        manifest = json.loads(open(runner.last_manifest).read())
        assert manifest["spans_path"] is None
