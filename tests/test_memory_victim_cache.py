"""Unit tests for the [Jou90] victim cache."""

import pytest

from repro.memory import CacheConfig
from repro.memory.cache import EvictedLine
from repro.memory.victim_cache import VictimCache, VictimCachedL1

DM = CacheConfig(size=1024, assoc=1, line_size=32)


class TestVictimCache:
    def test_insert_then_probe_hits(self):
        victim = VictimCache(entries=4)
        victim.insert(EvictedLine(0x100 >> 5, dirty=False))
        assert victim.probe(0x100)

    def test_probe_consumes(self):
        victim = VictimCache(entries=4)
        victim.insert(EvictedLine(0x100 >> 5, dirty=False))
        assert victim.probe(0x100)
        assert not victim.probe(0x100)

    def test_capacity_fifo(self):
        victim = VictimCache(entries=2)
        for i in range(3):
            victim.insert(EvictedLine(i, dirty=False))
        assert victim.occupancy == 2
        assert not victim.probe(0)        # oldest evicted
        assert victim.probe(1 << 5)

    def test_stats(self):
        victim = VictimCache(entries=2)
        victim.insert(EvictedLine(1, dirty=False))
        victim.probe(1 << 5)
        victim.probe(0x9999 << 5)
        assert victim.hits == 1
        assert victim.probes == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            VictimCache(entries=0)

    def test_flush(self):
        victim = VictimCache(entries=2)
        victim.insert(EvictedLine(1, dirty=False))
        victim.flush()
        assert victim.occupancy == 0


class TestVictimCachedL1:
    def test_conflict_pingpong_rescued(self):
        """Two lines in one DM set alternate: without a victim cache every
        access misses; with one, steady state is all victim hits."""
        front = VictimCachedL1(DM, victim_entries=4)
        a, b = 0x0, 0x400  # same set in a 1KB DM cache
        outcomes = [front.access(addr) for _ in range(20)
                    for addr in (a, b)]
        steady = outcomes[4:]
        assert all(result == VictimCachedL1.VICTIM_HIT for result in steady)

    def test_working_set_beyond_victim_capacity_still_misses(self):
        front = VictimCachedL1(DM, victim_entries=2)
        addrs = [0x400 * k for k in range(6)]  # six-way conflict
        for _ in range(5):
            for addr in addrs:
                front.access(addr)
        assert front.victim.hits == 0

    def test_plain_hits_bypass_victim(self):
        front = VictimCachedL1(DM, victim_entries=2)
        front.access(0x40)
        assert front.access(0x40) == VictimCachedL1.L1_HIT
        assert front.victim.probes == 1  # only the initial miss probed
