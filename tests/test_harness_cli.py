"""Integration tests for the CLI entry point (quick mode)."""

import json

import pytest

from repro.harness.__main__ import main


class TestCLITables:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "out-of-order" in out and "in-order" in out
        assert "2MB" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "900 cycles" in out
        assert "33-cycle lookup" in out


class TestCLIExperiments:
    def test_figure2_subset_with_json(self, capsys, tmp_path):
        path = tmp_path / "f2.json"
        assert main(["figure2", "--quick", "--benchmarks", "espresso",
                     "--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "espresso" in out
        data = json.loads(path.read_text())
        assert data["name"] == "figure2"
        labels = {bar["label"] for bar in data["bars"]}
        assert labels == {"N", "S1", "U1", "S10", "U10"}

    def test_characterize(self, capsys):
        assert main(["characterize", "--quick",
                     "--benchmarks", "ora"]) == 0
        out = capsys.readouterr().out
        assert "memory fraction" in out

    def test_handler100_quick(self, capsys):
        assert main(["handler100", "--quick"]) == 0
        assert "S100" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure9"])
