"""Integration tests for the CLI entry point (quick mode)."""

import json

import pytest

from repro.harness.__main__ import main


class TestCLITables:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "out-of-order" in out and "in-order" in out
        assert "2MB" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "900 cycles" in out
        assert "33-cycle lookup" in out


class TestCLIExperiments:
    def test_figure2_subset_with_json(self, capsys, tmp_path):
        path = tmp_path / "f2.json"
        assert main(["figure2", "--quick", "--benchmarks", "espresso",
                     "--json", str(path), "--no-cache", "--no-bench"]) == 0
        out = capsys.readouterr().out
        assert "espresso" in out
        data = json.loads(path.read_text())
        assert data["name"] == "figure2"
        labels = {bar["label"] for bar in data["bars"]}
        assert labels == {"N", "S1", "U1", "S10", "U10"}

    def test_characterize(self, capsys):
        assert main(["characterize", "--quick",
                     "--benchmarks", "ora"]) == 0
        out = capsys.readouterr().out
        assert "memory fraction" in out

    def test_handler100_quick(self, capsys):
        assert main(["handler100", "--quick", "--no-cache",
                     "--no-bench"]) == 0
        assert "S100" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure9"])


class TestCLIEngineFlags:
    F2 = ["figure2", "--quick", "--benchmarks", "espresso"]

    def run_json(self, args, tmp_path, name="out.json"):
        path = tmp_path / name
        assert main(args + ["--json", str(path)]) == 0
        return json.loads(path.read_text())

    def test_jobs_parallel_matches_serial(self, capsys, tmp_path):
        serial = self.run_json(
            self.F2 + ["--jobs", "1", "--no-cache", "--no-bench"],
            tmp_path, "serial.json")
        parallel = self.run_json(
            self.F2 + ["--jobs", "4", "--no-cache", "--no-bench"],
            tmp_path, "parallel.json")
        assert serial == parallel
        capsys.readouterr()

    def test_cache_round_trip_reports_hits(self, capsys, tmp_path,
                                           monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(self.F2 + ["--no-bench"]) == 0
        cold = capsys.readouterr().out
        assert "0 hits" in cold
        assert main(self.F2 + ["--no-bench"]) == 0
        warm = capsys.readouterr().out
        assert "10 hits / 0 misses (100% hit rate)" in warm

    def test_seed_flag_changes_results(self, capsys, tmp_path):
        base = self.run_json(
            self.F2 + ["--no-cache", "--no-bench"], tmp_path, "s0.json")
        seeded = self.run_json(
            self.F2 + ["--no-cache", "--no-bench", "--seed", "9"],
            tmp_path, "s9.json")
        assert base != seeded
        capsys.readouterr()

    def test_seed_rejected_for_non_workload_experiments(self):
        with pytest.raises(SystemExit):
            main(["table1", "--seed", "5"])

    def test_trace_written(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main(self.F2 + ["--no-cache", "--no-bench",
                               "--trace", str(trace)]) == 0
        events = [json.loads(line)
                  for line in trace.read_text().splitlines()]
        header, events = events[0], events[1:]
        assert header["event"] == "run_header"
        assert header["experiment"] == "figure2"
        assert {e["event"] for e in events} == {"queued", "started",
                                                "finished"}
        capsys.readouterr()

    def test_manifest_written_by_default(self, capsys, tmp_path,
                                         monkeypatch):
        runs = tmp_path / "runs"
        monkeypatch.setenv("REPRO_RUNS_DIR", str(runs))
        assert main(self.F2 + ["--no-cache", "--no-bench"]) == 0
        out = capsys.readouterr().out
        assert "run manifest:" in out
        manifests = list(runs.glob("*/manifest.json"))
        assert len(manifests) == 1
        manifest = json.loads(manifests[0].read_text())
        assert manifest["experiment"] == "figure2"
        assert manifest["argv"][0] == "figure2"
        assert len(manifest["cells"]) == 10

    def test_no_manifest_flag_suppresses_write(self, capsys, tmp_path,
                                               monkeypatch):
        runs = tmp_path / "runs"
        monkeypatch.setenv("REPRO_RUNS_DIR", str(runs))
        assert main(self.F2 + ["--no-cache", "--no-bench",
                               "--no-manifest"]) == 0
        out = capsys.readouterr().out
        assert "run manifest:" not in out
        assert not runs.exists()

    def test_bench_file_written(self, capsys, tmp_path):
        bench = tmp_path / "BENCH_harness.json"
        assert main(self.F2 + ["--no-cache", "--bench", str(bench)]) == 0
        data = json.loads(bench.read_text())
        entry = data["experiments"]["figure2"]["cold"]
        assert entry["jobs"] == 10
        assert entry["workers"] == 1
        assert entry["wall_seconds"] > 0
        assert entry["temperature"] == "cold"
        capsys.readouterr()

    def test_bad_jobs_rejected(self):
        with pytest.raises(SystemExit):
            main(self.F2 + ["--jobs", "0"])


class TestCLIJsonEverywhere:
    """--json must work (not silently no-op) for every experiment."""

    def test_handler100_json(self, capsys, tmp_path):
        path = tmp_path / "h100.json"
        assert main(["handler100", "--quick", "--no-cache", "--no-bench",
                     "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert {bar["label"] for bar in data["bars"]} == {"N", "S100"}
        capsys.readouterr()

    def test_cc_vs_trap_json(self, capsys, tmp_path):
        path = tmp_path / "cc.json"
        assert main(["cc-vs-trap", "--quick", "--no-cache", "--no-bench",
                     "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert {bar["label"] for bar in data["bars"]} == {"N", "CC1", "U1"}
        capsys.readouterr()

    def test_branch_vs_exception_json(self, capsys, tmp_path):
        path = tmp_path / "bve.json"
        assert main(["branch-vs-exception", "--quick", "--no-cache",
                     "--no-bench", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert "E10" in {bar["label"] for bar in data["bars"]}
        capsys.readouterr()

    def test_table1_json(self, capsys, tmp_path):
        path = tmp_path / "t1.json"
        assert main(["table1", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["ooo"]["core"]["issue_width"] == 4
        capsys.readouterr()

    def test_table2_json(self, capsys, tmp_path):
        path = tmp_path / "t2.json"
        assert main(["table2", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["machine"]["message_latency"] == 900
        assert "INFORMING" in data["method_costs"]
        capsys.readouterr()

    def test_sensitivity_json(self, capsys, tmp_path):
        path = tmp_path / "sens.json"
        assert main(["sensitivity", "--no-bench", "--no-cache",
                     "--benchmarks", "read_mostly",
                     "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert len(data["points"]) >= 4
        assert {"message_latency", "l1_size", "reference_checking",
                "ecc"} <= set(data["points"][0])
        capsys.readouterr()

    def test_characterize_json(self, capsys, tmp_path):
        path = tmp_path / "char.json"
        assert main(["characterize", "--quick", "--benchmarks", "ora",
                     "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["ora"]["instructions"] == 10_000
        assert 0.0 < data["ora"]["mem_fraction"] < 1.0
        capsys.readouterr()
