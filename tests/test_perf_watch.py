"""Live grid monitor: deterministic replay, schema gate, stream recovery."""

import io
import json

import pytest

from repro.exec import (
    ExecOptions,
    JobRunner,
    SimJob,
    TELEMETRY_SCHEMA,
    run_header_record,
)
from repro.perf import TelemetryFollower, WatchError, follow, replay, watch_main


def echo_execute(job):
    return {"label": job.label, "seed": job.seed}


def make_job(name="a", seed=0):
    return SimJob.bar(benchmark=name, machine="m", label="L",
                      instructions=1, warmup=0, seed=seed)


def record_stream(tmp_path, jobs=2, workers=1, cache_dir=None):
    """Run a tiny grid with --trace on and return the telemetry path."""
    trace = tmp_path / "telemetry.jsonl"
    options = ExecOptions(jobs=workers, cache=cache_dir is not None,
                          cache_dir=cache_dir, trace_path=str(trace),
                          run_meta={"experiment": "watch-test",
                                    "argv": ["watch-test"], "seed": 0})
    runner = JobRunner(options, execute=echo_execute)
    runner.run([make_job(chr(ord("a") + i)) for i in range(jobs)])
    return trace


def synthetic_stream(events, header=True, schema=TELEMETRY_SCHEMA):
    lines = []
    if header:
        record = run_header_record(experiment="synth", argv=["synth"],
                                   seed=0, workers=2, jobs=2)
        record["schema"] = schema
        lines.append(json.dumps(record))
    lines.extend(json.dumps(e) for e in events)
    return "\n".join(lines) + "\n"


EVENTS = [
    {"event": "queued", "key": "k1", "label": "a/m/L", "timestamp": 10.0},
    {"event": "queued", "key": "k2", "label": "b/m/L", "timestamp": 10.0},
    {"event": "started", "key": "k1", "label": "a/m/L", "timestamp": 10.1,
     "attempt": 1},
    {"event": "cache_hit", "key": "k2", "label": "b/m/L", "timestamp": 10.2},
    {"event": "finished", "key": "k2", "label": "b/m/L", "timestamp": 10.2,
     "wall": 0.0, "cache": "hit"},
    {"event": "finished", "key": "k1", "label": "a/m/L", "timestamp": 12.1,
     "wall": 2.0, "cache": "miss"},
]


class TestReplay:
    def test_recorded_stream_replays_deterministically(self, tmp_path):
        """Acceptance: replaying a recorded run gives a stable panel."""
        trace = record_stream(tmp_path, jobs=3)
        first = replay(str(trace))
        second = replay(str(trace))
        assert first.snapshot() == second.snapshot()
        assert first.render(jobs_detail=5) == second.render(jobs_detail=5)
        snap = first.snapshot()
        assert snap["experiment"] == "watch-test"
        assert snap["total"] == 3
        assert snap["done"] == 3
        assert snap["failed"] == 0
        assert snap["complete"] is True

    def test_stats_come_from_event_timestamps(self):
        follower = TelemetryFollower()
        follower.feed_text(synthetic_stream(EVENTS))
        snap = follower.snapshot()
        assert snap["elapsed"] == pytest.approx(2.1)
        assert snap["done"] == 1
        assert snap["cached"] == 1
        assert snap["cache_hit_ratio"] == 0.5
        assert snap["throughput"] == pytest.approx(2 / 2.1, abs=1e-3)
        # One 2.0s wall over 2.1s elapsed across 2 declared workers.
        assert snap["utilization"] == pytest.approx(2.0 / (2.1 * 2), abs=1e-3)
        assert snap["complete"] is True
        assert snap["eta"] == 0.0

    def test_multi_grid_stream_accumulates_header_totals(self):
        """sensitivity-style streams carry one header per grid; totals
        and completion must span all of them."""
        grid2 = [
            {"event": "queued", "key": "k3", "label": "c/m/L",
             "timestamp": 20.0},
            {"event": "queued", "key": "k4", "label": "d/m/L",
             "timestamp": 20.0},
            {"event": "finished", "key": "k3", "label": "c/m/L",
             "timestamp": 21.0, "wall": 1.0, "cache": "miss"},
            {"event": "finished", "key": "k4", "label": "d/m/L",
             "timestamp": 21.5, "wall": 0.5, "cache": "miss"},
        ]
        follower = TelemetryFollower()
        follower.feed_text(synthetic_stream(EVENTS))
        follower.feed_text(synthetic_stream(grid2))
        snap = follower.snapshot()
        assert snap["total"] == 4
        assert snap["done"] == 3 and snap["cached"] == 1
        assert snap["complete"] is True
        assert snap["elapsed"] == pytest.approx(11.5)

    def test_cache_hits_render_in_panel(self, tmp_path):
        cache_dir = tmp_path / "cache"
        record_stream(tmp_path, jobs=2, cache_dir=str(cache_dir))
        warm = record_stream(tmp_path, jobs=2, cache_dir=str(cache_dir))
        snap = replay(str(warm)).snapshot()
        assert snap["cached"] == 2
        assert snap["cache_hit_ratio"] == 1.0


class TestJournalReplays:
    """Resumed runs replay finished cells from the journal in zero wall
    time; the panel must count them as progress without letting their
    wall=0 records skew throughput or the ETA."""

    REPLAY_EVENTS = [
        {"event": "queued", "key": "k1", "label": "a/m/L",
         "timestamp": 10.0},
        {"event": "queued", "key": "k2", "label": "b/m/L",
         "timestamp": 10.0},
        {"event": "replayed", "key": "k1", "label": "a/m/L",
         "timestamp": 10.0},
        {"event": "finished", "key": "k1", "label": "a/m/L",
         "timestamp": 10.0, "wall": 0.0, "cache": "replay"},
        {"event": "started", "key": "k2", "label": "b/m/L",
         "timestamp": 10.1, "attempt": 1},
        {"event": "finished", "key": "k2", "label": "b/m/L",
         "timestamp": 12.1, "wall": 2.0, "cache": "miss"},
    ]

    def test_replays_count_as_progress_not_throughput(self):
        follower = TelemetryFollower()
        follower.feed_text(synthetic_stream(self.REPLAY_EVENTS))
        snap = follower.snapshot()
        assert snap["replayed"] == 1
        assert snap["done"] == 1
        assert snap["complete"] is True
        assert snap["eta"] == 0.0
        # Only the genuinely executed job feeds the rate; a replayed
        # grid must not claim 2 jobs in 2.1s.
        assert snap["throughput"] == pytest.approx(1 / 2.1, abs=1e-3)
        assert snap["utilization"] == pytest.approx(2.0 / (2.1 * 2),
                                                    abs=1e-3)

    def test_eta_ignores_zero_wall_replays(self):
        events = self.REPLAY_EVENTS[:4] + [
            {"event": "queued", "key": "k3", "label": "c/m/L",
             "timestamp": 10.0},
        ] + self.REPLAY_EVENTS[4:]
        follower = TelemetryFollower()
        follower.feed_text(synthetic_stream(events))
        snap = follower.snapshot()
        # One cell still queued; mean wall comes from the one real run
        # (2.0s), never from the 0.0s replay: eta = 1 * 2.0 / 2 workers.
        assert snap["complete"] is False
        assert snap["mean_wall"] == pytest.approx(2.0)
        assert snap["eta"] == pytest.approx(1.0)

    def test_torn_tail_replay_recovers_from_finished_record(self):
        """A journal replay whose REPLAYED record was lost still lands
        in the replayed bucket via cache="replay" on FINISHED."""
        events = [e for e in self.REPLAY_EVENTS
                  if e["event"] != "replayed"]
        follower = TelemetryFollower()
        follower.feed_text(synthetic_stream(events))
        snap = follower.snapshot()
        assert snap["replayed"] == 1
        assert snap["done"] == 1

    def test_replays_render_in_panel_and_status_line(self):
        follower = TelemetryFollower()
        follower.feed_text(synthetic_stream(self.REPLAY_EVENTS))
        assert "1 journal-replayed" in follower.render()
        status = follower.status_line()
        assert "[2/2]" in status
        assert "replay 1" in status


class TestSchemaGate:
    def test_unknown_schema_is_rejected_with_guidance(self):
        follower = TelemetryFollower()
        with pytest.raises(WatchError) as err:
            follower.feed_text(synthetic_stream([], schema=99))
        message = str(err.value)
        assert "schema 99" in message
        assert str(TELEMETRY_SCHEMA) in message
        assert "regenerate" in message

    def test_headerless_stream_tolerated_with_note(self):
        follower = TelemetryFollower()
        follower.feed_text(synthetic_stream(EVENTS, header=False))
        assert follower.header is None
        assert "headerless" in follower.render()
        assert follower.snapshot()["total"] == 2

    def test_cli_exits_2_on_unknown_schema(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        trace.write_text(synthetic_stream([], schema=99))
        assert watch_main([str(trace)]) == 2
        out = capsys.readouterr().out
        assert "schema 99" in out


class TestStreamRecovery:
    def test_corrupt_lines_are_counted_and_skipped(self):
        follower = TelemetryFollower()
        text = synthetic_stream(EVENTS)
        lines = text.splitlines()
        lines.insert(3, "{truncated by a dying run")
        lines.insert(5, "not json at all")
        follower.feed_text("\n".join(lines) + "\n")
        snap = follower.snapshot()
        assert snap["corrupt_lines"] == 2
        assert snap["done"] == 1 and snap["cached"] == 1
        assert "corrupt line(s)" in follower.render()

    def test_partial_trailing_line_buffers_until_newline(self):
        follower = TelemetryFollower()
        text = synthetic_stream(EVENTS)
        split = len(text) - 25  # mid-way through the last record
        follower.feed_text(text[:split])
        assert follower.snapshot()["complete"] is False
        follower.feed_text(text[split:])
        assert follower.snapshot()["complete"] is True
        assert follower.corrupt_lines == 0

    def test_missing_file_is_a_watch_error(self, tmp_path):
        with pytest.raises(WatchError, match="cannot read"):
            replay(str(tmp_path / "nope.jsonl"))


class TestFollowAndCLI:
    def test_follow_tails_to_completion(self, tmp_path):
        trace = record_stream(tmp_path, jobs=2)
        out = io.StringIO()
        follower = follow(str(trace), interval=0, stream=out,
                          _sleep=lambda _s: None)
        assert follower.complete
        assert "[2/2]" in out.getvalue()

    def test_follow_timeout_stops_on_incomplete_stream(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        trace.write_text(synthetic_stream(EVENTS[:3]))  # still running
        out = io.StringIO()
        follower = follow(str(trace), interval=0, timeout=0.01, stream=out,
                          _sleep=lambda _s: None)
        assert not follower.complete

    def test_cli_replay_renders_panel(self, tmp_path, capsys):
        trace = record_stream(tmp_path, jobs=2)
        assert watch_main([str(trace), "--jobs-detail", "1"]) == 0
        out = capsys.readouterr().out
        assert "watch — watch-test 2 jobs" in out
        assert "complete" in out
        assert "... and 1 more" in out

    def test_failed_jobs_surface_in_detail(self):
        follower = TelemetryFollower()
        events = EVENTS[:3] + [
            {"event": "failed", "key": "k1", "label": "a/m/L",
             "timestamp": 11.0, "error": "ValueError: boom"},
            {"event": "finished", "key": "k2", "label": "b/m/L",
             "timestamp": 11.0, "wall": 0.5, "cache": "miss"},
        ]
        follower.feed_text(synthetic_stream(events))
        snap = follower.snapshot()
        assert snap["failed"] == 1
        rendered = follower.render(jobs_detail=5)
        assert "ValueError: boom" in rendered
        assert "1 failed" in rendered
