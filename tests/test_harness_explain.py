"""``harness explain``: analysis math, diagnosis wording, CLI contract.

The analyses are exercised twice: on hand-built event lists with known
answers (reuse distances computed by hand, dead blocks planted
deliberately) and end-to-end on a real :mod:`repro.obs` trace from a
tiny simulated cell, where the histogram totals must reconcile with the
trace's own access counts.  The CLI contract — corrupt, empty or
missing inputs exit 2 with a message on stderr, never a traceback — is
what ``bench replacement --explain`` and scripted users rely on.
"""

import json

import pytest

from repro.harness.explain import (
    REUSE_BUCKETS,
    analyze_trace,
    dead_block_stats,
    diagnose,
    explain_main,
    render_analysis,
    reuse_distance_histogram,
    set_pressure,
    trap_accounting,
)


def ev(kind, **fields):
    event = {"cycle": 0, "kind": kind}
    event.update(fields)
    return event


def hit(line):
    return ev("l1.hit", line=line, write=False)


# -- reuse distance -----------------------------------------------------------


class TestReuseDistance:
    def test_first_touches_are_cold(self):
        histogram = reuse_distance_histogram([hit(1), hit(2), hit(3)])
        assert histogram["cold"] == 3
        assert sum(histogram.values()) == 3

    def test_immediate_rereference_is_zero(self):
        histogram = reuse_distance_histogram([hit(1), hit(1)])
        assert histogram["0"] == 1 and histogram["cold"] == 1

    def test_one_intervening_line_is_one(self):
        histogram = reuse_distance_histogram([hit(1), hit(2), hit(1)])
        assert histogram["1"] == 1

    def test_distance_counts_distinct_lines_not_accesses(self):
        # 1, then 2 touched three times, then 1 again: only ONE distinct
        # line intervenes, so the re-reference lands in bucket "1".
        events = [hit(1), hit(2), hit(2), hit(2), hit(1)]
        histogram = reuse_distance_histogram(events)
        assert histogram["1"] == 1
        assert histogram["0"] == 2  # the repeated 2s

    def test_far_rereference_lands_in_32_plus(self):
        events = [hit(0)] + [hit(n) for n in range(1, 40)] + [hit(0)]
        assert reuse_distance_histogram(events)["32+"] == 1

    def test_bucket_boundaries(self):
        # Distance 7 -> "4-7", distance 8 -> "8-15".
        events = ([hit(0)] + [hit(n) for n in range(1, 8)] + [hit(0)]
                  + [hit(99)] + [hit(0)])
        histogram = reuse_distance_histogram(events)
        assert histogram["4-7"] == 1   # 7 distinct lines intervened
        assert histogram["1"] == 1     # 0 re-touched past 99 only
        assert sum(histogram.values()) == len(events)

    def test_misses_and_merges_count_too(self):
        events = [ev("l1.miss", line=5, level=2, start=0, ready=10),
                  ev("l1.merge", line=5, mshr=0, ready=10)]
        histogram = reuse_distance_histogram(events)
        assert histogram["cold"] == 1 and histogram["0"] == 1

    def test_non_access_events_ignored(self):
        events = [ev("cache.fill", cache="L1D", set=0, line=1),
                  ev("trap.fire", pc=0, addr=0, handler_len=10)]
        assert sum(reuse_distance_histogram(events).values()) == 0

    def test_bucket_labels_complete(self):
        histogram = reuse_distance_histogram([])
        assert tuple(histogram) == REUSE_BUCKETS


# -- dead blocks --------------------------------------------------------------


class TestDeadBlocks:
    def test_fill_then_evict_without_hit_is_dead(self):
        events = [ev("cache.fill", cache="L1D", set=0, line=1),
                  ev("cache.evict", cache="L1D", set=0, line=1,
                     dirty=False)]
        stats = dead_block_stats(events)
        assert stats == {"evictions": 1, "dead": 1, "dead_rate": 1.0,
                         "live_at_end": 0}

    def test_hit_between_fill_and_evict_is_live(self):
        events = [ev("cache.fill", cache="L1D", set=0, line=1),
                  hit(1),
                  ev("cache.evict", cache="L1D", set=0, line=1,
                     dirty=False)]
        stats = dead_block_stats(events)
        assert stats["dead"] == 0 and stats["evictions"] == 1

    def test_unseen_eviction_counts_but_is_not_dead(self):
        # Trace starts mid-run: the victim's fill predates the trace.
        events = [ev("cache.evict", cache="L1D", set=0, line=9,
                     dirty=True)]
        stats = dead_block_stats(events)
        assert stats["evictions"] == 1 and stats["dead"] == 0

    def test_l2_events_do_not_pollute_l1_accounting(self):
        events = [ev("cache.fill", cache="L2", set=0, line=1),
                  ev("cache.evict", cache="L2", set=0, line=1,
                     dirty=False)]
        stats = dead_block_stats(events)
        assert stats["evictions"] == 0 and stats["live_at_end"] == 0

    def test_live_at_end_counts_unevicted_fills(self):
        events = [ev("cache.fill", cache="L1D", set=0, line=n)
                  for n in range(4)]
        assert dead_block_stats(events)["live_at_end"] == 4


# -- set pressure and traps ---------------------------------------------------


class TestSetPressure:
    def test_top_k_ordering_and_shares(self):
        events = ([ev("cache.evict", cache="L1D", set=3, line=1,
                      dirty=False)] * 3
                  + [ev("cache.evict", cache="L1D", set=7, line=2,
                        dirty=False)])
        ranked = set_pressure(events, top=2)
        assert ranked[0] == {"set": 3, "evictions": 3, "share": 0.75}
        assert ranked[1]["set"] == 7

    def test_empty_trace_gives_empty_ranking(self):
        assert set_pressure([]) == []


class TestTrapAccounting:
    def test_totals_and_mean(self):
        events = [ev("trap.fire", pc=0, addr=0, handler_len=10),
                  ev("trap.fire", pc=4, addr=0, handler_len=14),
                  ev("trap.return", start=0, committed=12)]
        traps = trap_accounting(events)
        assert traps["fires"] == 2
        assert traps["handler_instructions_injected"] == 24
        assert traps["mean_handler_len"] == 12.0
        assert traps["handler_instructions_committed"] == 12

    def test_quiet_trace(self):
        traps = trap_accounting([hit(1)])
        assert traps["fires"] == 0 and traps["mean_handler_len"] == 0.0


# -- diagnosis ----------------------------------------------------------------


def _analysis(near=0, far=0, mid=0, dead_rate=0.0, evictions=100):
    histogram = {label: 0 for label in REUSE_BUCKETS}
    histogram["0"] = near
    histogram["32+"] = far
    histogram["8-15"] = mid
    return {
        "reuse_distance": histogram,
        "dead_blocks": {"evictions": evictions,
                        "dead": int(dead_rate * evictions),
                        "dead_rate": dead_rate, "live_at_end": 0},
    }


class TestDiagnose:
    def test_dead_fills_implicate_scan_resistance(self):
        text = diagnose(_analysis(near=70, far=30, dead_rate=0.3))
        assert "rrip" in text and "polluting" in text

    def test_dead_rate_needs_enough_evictions(self):
        # 3 dead evictions out of 10 is noise, not a mechanism.
        text = diagnose(_analysis(near=70, far=30, dead_rate=0.3,
                                  evictions=10))
        assert "polluting" not in text

    def test_capacity_bound_implicates_lru(self):
        text = diagnose(_analysis(near=10, far=90, dead_rate=0.02))
        assert "lru" in text and "capacity" in text

    def test_near_reuse_is_recency_friendly(self):
        text = diagnose(_analysis(near=90, far=5, dead_rate=0.02))
        assert "recency-friendly" in text

    def test_mixed_stream_admits_it(self):
        text = diagnose(_analysis(near=30, far=30, mid=40,
                                  dead_rate=0.02))
        assert "mixed" in text


# -- end to end on a real trace ----------------------------------------------


@pytest.fixture(scope="module")
def traced_cell():
    from repro.harness.runner import bar_config, run_bar
    from repro.obs import Observer

    observer = Observer(trace=True)
    run_bar("compress", "lab", bar_config("S10"), 1500, 750,
            observe=observer)
    return observer.events


class TestEndToEnd:
    def test_histogram_reconciles_with_access_events(self, traced_cell):
        analysis = analyze_trace(traced_cell)
        accesses = analysis["accesses"]
        assert sum(accesses.values()) > 0
        assert (sum(analysis["reuse_distance"].values())
                == sum(accesses.values()))

    def test_real_trace_has_evictions_and_traps(self, traced_cell):
        analysis = analyze_trace(traced_cell)
        assert analysis["dead_blocks"]["evictions"] > 0
        assert analysis["traps"]["fires"] > 0
        assert analysis["traps"]["mean_handler_len"] == 11.0

    def test_render_mentions_every_section(self, traced_cell):
        text = render_analysis("cell", analyze_trace(traced_cell))
        for section in ("reuse distance", "dead blocks", "set pressure",
                        "traps", "diagnosis"):
            assert section in text


class TestCli:
    def _write_trace(self, tmp_path, events):
        from repro.obs.export import write_jsonl
        path = tmp_path / "cell.events.jsonl"
        write_jsonl(events, str(path))
        return str(path)

    def test_text_output(self, tmp_path, capsys, traced_cell):
        path = self._write_trace(tmp_path, traced_cell)
        assert explain_main([path]) == 0
        out = capsys.readouterr().out
        assert "diagnosis" in out and path in out

    def test_json_output_parses(self, tmp_path, capsys, traced_cell):
        path = self._write_trace(tmp_path, traced_cell)
        assert explain_main([path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["source"] == path
        # --json sorts keys, so compare as sets
        assert set(payload["reuse_distance"]) == set(REUSE_BUCKETS)

    def test_empty_trace_exits_2(self, tmp_path, capsys):
        path = tmp_path / "empty.events.jsonl"
        path.write_text("\n")
        assert explain_main([str(path)]) == 2
        assert "empty trace" in capsys.readouterr().err

    def test_corrupt_trace_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.events.jsonl"
        path.write_text('{"cycle": 1, "kind": "l1.hit"\n')
        assert explain_main([str(path)]) == 2
        assert "corrupt" in capsys.readouterr().err

    def test_unresolvable_ref_exits_2(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        assert explain_main(["no-such-run"]) == 2
        assert "no-such-run" in capsys.readouterr().err

    def test_manifest_without_traces_exits_2(self, tmp_path, capsys):
        from repro.exec import ExecOptions, JobRunner, SimJob

        runner = JobRunner(ExecOptions(jobs=1, cache=False,
                                       manifest_dir=str(tmp_path)))
        runner.run([SimJob.bar(benchmark="compress", machine="inorder",
                               label="N", instructions=300, warmup=100)])
        run_id = runner.last_manifest.split("/")[-2]
        code = explain_main([run_id, "--manifest-dir", str(tmp_path)])
        assert code == 2
        assert "--trace-events" in capsys.readouterr().err
