"""Unit tests for the register namespace and allocator."""

import pytest

from repro.isa.registers import (
    NUM_INT_REGS,
    NUM_REGS,
    REG_ZERO,
    RegisterAllocator,
    fp_reg,
    int_reg,
    is_fp_reg,
)


class TestRegisterNames:
    def test_int_and_fp_files_are_disjoint(self):
        ints = {int_reg(i) for i in range(NUM_INT_REGS)}
        fps = {fp_reg(i) for i in range(NUM_INT_REGS)}
        assert not ints & fps
        assert len(ints | fps) == NUM_REGS

    def test_fp_predicate(self):
        assert is_fp_reg(fp_reg(0))
        assert not is_fp_reg(int_reg(31))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            int_reg(32)
        with pytest.raises(ValueError):
            fp_reg(-1)


class TestRegisterAllocator:
    def test_round_robin(self):
        alloc = RegisterAllocator(base=4, count=3)
        assert [alloc.alloc() for _ in range(5)] == [4, 5, 6, 4, 5]

    def test_reset(self):
        alloc = RegisterAllocator(base=4, count=3)
        alloc.alloc()
        alloc.reset()
        assert alloc.alloc() == 4

    def test_never_allocates_zero_register(self):
        with pytest.raises(ValueError):
            RegisterAllocator(base=REG_ZERO, count=2)

    def test_window_must_fit_register_file(self):
        with pytest.raises(ValueError):
            RegisterAllocator(base=NUM_REGS - 1, count=2)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            RegisterAllocator(base=4, count=0)
