"""Unit tests for the out-of-order (R10000-like) core."""

import pytest

from repro.core import TrapStyle, add_cc_checks
from repro.isa import alu, branch, load, store
from tests.helpers import (
    cc_config,
    make_inorder,
    make_ooo,
    small_hierarchy,
    trap_config,
)


def independent_alus(n, pc_base=0x1000):
    return [alu(dest=1 + (i % 8), pc=pc_base + 4 * i) for i in range(n)]


def miss_chain_trace(n, stride=64, base=0x40000, pc_base=0x1000):
    """Loads to fresh lines, each followed by a dependent use."""
    trace = []
    for i in range(n):
        trace.append(load(base + stride * i, dest=2, pc=pc_base + 8 * i))
        trace.append(alu(dest=3, srcs=(2,), pc=pc_base + 4 + 8 * i))
    return trace


class TestBasicTiming:
    def test_independent_alu_throughput(self):
        stats = make_ooo().run(independent_alus(400))
        assert stats.app_instructions == 400
        assert 1.7 < stats.ipc <= 2.0  # 2 integer units

    def test_ooo_hides_miss_latency_better_than_inorder(self):
        # A pointer-ish serial miss chain mixed with independent FP work.
        trace = []
        for i in range(60):
            trace.append(load(0x40000 + 64 * i, dest=2, pc=0x1000 + 16 * i))
            trace.append(alu(dest=3, srcs=(2,), pc=0x1004 + 16 * i))
            trace.append(alu(dest=4 + (i % 4), pc=0x1008 + 16 * i))
            trace.append(alu(dest=8 + (i % 4), pc=0x100c + 16 * i))
        ooo_stats = make_ooo().run(list(trace))
        ino_stats = make_inorder().run(list(trace))
        assert ooo_stats.cycles < ino_stats.cycles

    def test_rob_bounds_lookahead(self):
        # A long-latency head blocks graduation; ROB fills; fetch stalls.
        trace = [load(0x70000, dest=2, pc=0x1000)]
        trace += independent_alus(100, pc_base=0x2000)
        small = make_ooo(rob_size=8).run(list(trace))
        big = make_ooo(rob_size=32).run(list(trace))
        assert big.cycles <= small.cycles

    def test_mispredict_restarts_fetch(self):
        import random
        rng = random.Random(3)
        trace = []
        for i in range(200):
            trace.append(branch(rng.random() < 0.5, pc=0x1000 + 8 * i))
            trace.append(alu(dest=1, pc=0x1004 + 8 * i))
        stats = make_ooo().run(trace)
        assert stats.branch_mispredicts > 40
        assert stats.app_instructions == 400

    def test_shadow_state_limits_branch_lookahead(self):
        # Many predictable branches in flight: fewer shadow slots, slower.
        trace = []
        for i in range(300):
            trace.append(branch(False, pc=0x1000 + 8 * i))
            trace.append(load(0x40000 + 64 * i, dest=1, pc=0x1004 + 8 * i))
        tight = make_ooo(shadow_branches=1).run(list(trace))
        loose = make_ooo(shadow_branches=8).run(list(trace))
        assert loose.cycles <= tight.cycles

    def test_graduation_blames_cache_for_head_miss(self):
        stats = make_ooo().run(miss_chain_trace(50))
        assert stats.cache_stall_slots > 0

    def test_stores_graduate_quickly(self):
        trace = [store(0x50000 + 64 * i, pc=0x1000 + 4 * i) for i in range(8)]
        trace += independent_alus(40, pc_base=0x2000)
        stats = make_ooo().run(trace)
        assert stats.cycles < 120


class TestInformingTraps:
    def test_branch_like_invokes_handler_per_miss(self):
        trace = [load(0x40000 + 64 * i, dest=2, pc=0x1000 + 4 * i)
                 for i in range(25)]
        core = make_ooo(informing=trap_config(n=1))
        stats = core.run(trace)
        assert core.engine.invocations >= 25
        assert stats.handler_invocations == core.engine.invocations

    def test_exception_like_slower_than_branch_like(self):
        trace = miss_chain_trace(60)
        br = make_ooo(informing=trap_config(n=10)).run(list(trace))
        ex = make_ooo(
            informing=trap_config(n=10, style=TrapStyle.EXCEPTION_LIKE)
        ).run(list(trace))
        assert ex.cycles > br.cycles

    def test_handler_work_counted_separately(self):
        trace = [load(0x40000 + 64 * i, dest=2, pc=0x1000 + 4 * i)
                 for i in range(20)]
        base = make_ooo().run(list(trace))
        informed = make_ooo(informing=trap_config(n=10)).run(list(trace))
        assert informed.app_instructions == base.app_instructions == 20
        assert informed.handler_instructions >= 20 * 11

    def test_app_results_identical_under_informing(self):
        trace = miss_chain_trace(40) + independent_alus(60, 0x9000)
        base = make_ooo().run(list(trace))
        informed = make_ooo(informing=trap_config(n=1)).run(list(trace))
        assert informed.app_instructions == base.app_instructions

    def test_single_handler_serialises_unique_does_not(self):
        # Two misses in quick succession: chained single-handler
        # invocations depend on each other; unique handlers do not.
        trace = miss_chain_trace(60)
        single = make_ooo(informing=trap_config(n=10, unique=False)
                          ).run(list(trace))
        unique_stats = make_ooo(informing=trap_config(n=10, unique=True)
                                ).run(list(trace))
        # Both run; unique must never be slower by much.
        assert unique_stats.cycles <= single.cycles * 1.1

    def test_cc_checks_work_on_ooo(self):
        trace = [load(0x40000 + 64 * i, dest=2, pc=0x1000 + 8 * i)
                 for i in range(20)]
        core = make_ooo(informing=cc_config(n=1))
        stats = core.run(add_cc_checks(iter(trace)))
        assert core.engine.invocations >= 20
        assert stats.app_instructions == 20

    def test_disabled_engine_adds_no_cycles(self):
        trace = miss_chain_trace(40)
        base = make_ooo().run(list(trace))
        core = make_ooo(informing=trap_config(n=10))
        core.engine.disable()
        disabled = core.run(list(trace))
        assert disabled.cycles == base.cycles
        assert core.engine.invocations == 0


class TestWrongPath:
    @staticmethod
    def wrong_path_factory(branch_inst):
        base = 0x90000 + (branch_inst.pc & 0xFFF) * 64

        def generate():
            i = 0
            while True:
                yield load(base + 64 * i, dest=5, pc=0xF000 + 4 * i)
                yield alu(dest=6, srcs=(5,), pc=0xF100 + 4 * i)
                i += 1

        return generate()

    def mispredicting_trace(self, n=60):
        import random
        rng = random.Random(11)
        trace = []
        for i in range(n):
            trace.append(branch(rng.random() < 0.5, pc=0x1000 + 8 * i))
            trace.append(alu(dest=1, pc=0x1004 + 8 * i))
        return trace

    def test_wrong_path_instructions_squashed_not_committed(self):
        core = make_ooo(wrong_path_factory=self.wrong_path_factory)
        stats = core.run(self.mispredicting_trace())
        assert core.wrong_path_squashed > 0
        assert stats.app_instructions == 120

    def test_wrong_path_loads_pollute_without_guarantee(self):
        hierarchy = small_hierarchy(extended=False)
        core = make_ooo(hierarchy=hierarchy,
                        wrong_path_factory=self.wrong_path_factory)
        core.run(self.mispredicting_trace())
        hierarchy.drain()
        # Speculative wrong-path fills silently landed in L1.
        assert hierarchy.stats.squash_invalidations == 0

    def slow_resolve_trace(self, n=40):
        """Mispredicting branches that resolve only after ~150 cycles
        (a divide chain), so wrong-path fills land before the squash."""
        import random
        from repro.isa import OpClass
        from repro.isa.instructions import DynInst
        rng = random.Random(5)
        trace = []
        for i in range(n):
            pc = 0x1000 + 16 * i
            trace.append(DynInst(OpClass.IDIV, dest=9, srcs=(1,), pc=pc))
            trace.append(DynInst(OpClass.IDIV, dest=9, srcs=(9,), pc=pc + 4))
            trace.append(branch(rng.random() < 0.5, srcs=(9,), pc=pc + 8))
            trace.append(alu(dest=1, pc=pc + 12))
        return trace

    def test_extended_mshrs_invalidate_squashed_fills(self):
        hierarchy = small_hierarchy(extended=True)
        core = make_ooo(hierarchy=hierarchy,
                        wrong_path_factory=self.wrong_path_factory)
        core.run(self.slow_resolve_trace())
        assert core.wrong_path_squashed > 0
        # Fills that landed before the squash were invalidated out of L1
        # (the Section 3.3 guarantee)...
        assert hierarchy.stats.squash_invalidations > 0
        assert hierarchy.mshrs.high_water <= 8

    def test_squashed_fill_leaves_data_in_l2(self):
        """The invalidated wrong-path line survives in L2 — the paper's
        'effectively prefetched into the second-level cache'."""
        hierarchy = small_hierarchy(extended=True)
        addrs = []

        def factory(branch_inst):
            base = 0xA0000 + (branch_inst.pc & 0xFF) * 0x100

            def generate():
                i = 0
                while True:
                    addrs.append(base + 64 * i)
                    yield load(base + 64 * i, dest=5, pc=0xF000 + 4 * i)
                    i += 1

            return generate()

        core = make_ooo(hierarchy=hierarchy, wrong_path_factory=factory)
        core.run(self.slow_resolve_trace())
        hierarchy.drain()
        if hierarchy.stats.squash_invalidations:
            in_l2 = sum(1 for a in set(addrs) if hierarchy.l2.contains(a))
            assert in_l2 > 0

    def test_mshrs_all_released_at_end(self):
        hierarchy = small_hierarchy(extended=True)
        core = make_ooo(hierarchy=hierarchy,
                        wrong_path_factory=self.wrong_path_factory,
                        informing=trap_config(n=1))
        core.run(self.mispredicting_trace())
        assert hierarchy.mshrs.occupancy() == 0
