"""Unit tests for the set-associative cache model."""

import pytest

from repro.memory import Cache, CacheConfig


def make_cache(size=256, assoc=2, line=32):
    return Cache(CacheConfig(size=size, assoc=assoc, line_size=line))


class TestCacheConfig:
    def test_num_sets(self):
        assert CacheConfig(size=32 * 1024, assoc=2, line_size=32).num_sets == 512

    def test_direct_mapped(self):
        assert CacheConfig(size=8 * 1024, assoc=1, line_size=32).num_sets == 256

    def test_bad_line_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size=1024, assoc=2, line_size=24)

    def test_bad_assoc(self):
        with pytest.raises(ValueError):
            CacheConfig(size=1024, assoc=0)

    def test_indivisible_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size=1000, assoc=2, line_size=32)


class TestCacheBasics:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        assert not cache.probe(0x100)
        cache.fill(0x100)
        assert cache.probe(0x100)

    def test_same_line_hits(self):
        cache = make_cache(line=32)
        cache.fill(0x100)
        assert cache.probe(0x100 + 31)
        assert not cache.probe(0x100 + 32)

    def test_invalidate(self):
        cache = make_cache()
        cache.fill(0x40)
        assert cache.invalidate(0x40)
        assert not cache.probe(0x40)
        assert not cache.invalidate(0x40)

    def test_contains_has_no_lru_side_effect(self):
        cache = make_cache(size=64, assoc=2, line=32)  # one set, two ways
        cache.fill(0x0)
        cache.fill(0x40)
        # contains() must not refresh 0x0; probing would.
        assert cache.contains(0x0)
        victim = cache.fill(0x80)
        assert victim.line_addr == 0x0 >> 5

    def test_flush(self):
        cache = make_cache()
        cache.fill(0x0)
        cache.fill(0x20)
        cache.flush()
        assert cache.resident_lines() == 0


class TestLRUReplacement:
    def test_lru_victim(self):
        cache = make_cache(size=64, assoc=2, line=32)  # one set
        cache.fill(0x0)
        cache.fill(0x40)
        cache.probe(0x0)          # 0x40 becomes LRU
        victim = cache.fill(0x80)
        assert victim.line_addr == 0x40 >> 5
        assert cache.probe(0x0)
        assert cache.probe(0x80)

    def test_direct_mapped_conflict(self):
        cache = make_cache(size=64, assoc=1, line=32)  # two sets
        cache.fill(0x0)
        victim = cache.fill(0x40)  # same set as 0x0
        assert victim.line_addr == 0
        assert not cache.probe(0x0)

    def test_refill_resident_line_evicts_nothing(self):
        cache = make_cache(size=64, assoc=2, line=32)
        cache.fill(0x0)
        cache.fill(0x40)
        assert cache.fill(0x0) is None
        assert cache.resident_lines() == 2

    def test_capacity_never_exceeded(self):
        cache = make_cache(size=128, assoc=2, line=32)
        for i in range(50):
            cache.fill(i * 32)
        assert cache.resident_lines() <= 4


class TestDirtyBits:
    def test_write_probe_sets_dirty(self):
        cache = make_cache()
        cache.fill(0x100)
        cache.probe(0x100, is_write=True)
        assert cache.is_dirty(0x100)

    def test_dirty_fill(self):
        cache = make_cache()
        cache.fill(0x100, dirty=True)
        assert cache.is_dirty(0x100)

    def test_victim_reports_dirty(self):
        cache = make_cache(size=32, assoc=1, line=32)
        cache.fill(0x0, dirty=True)
        victim = cache.fill(0x20)
        assert victim.dirty

    def test_refill_preserves_dirty(self):
        cache = make_cache()
        cache.fill(0x100, dirty=True)
        cache.fill(0x100, dirty=False)
        assert cache.is_dirty(0x100)

    def test_clean_line_not_dirty(self):
        cache = make_cache()
        cache.fill(0x100)
        assert not cache.is_dirty(0x100)
        assert not cache.is_dirty(0x999)
