"""Tracing across the HTTP boundary: traceparent continuation, foreign
and malformed headers, the unsampled span-free path, healthz metadata
and the serve span artifacts."""

import json

import pytest

from repro.serve import ServeOptions, mint_traceparent
from repro.serve.client import ServeClient  # noqa: F401  (re-export check)
from repro.harness.spans_cli import build_tree, group_by_trace
from repro.trace import clear_ambient
from repro.trace.exporters import read_spans

from tests.test_serve_gateway import LiveServer, tiny_spec


@pytest.fixture(autouse=True)
def _clean_trace_env(monkeypatch):
    for var in ("REPRO_TRACEPARENT", "REPRO_TRACE_SAMPLE",
                "REPRO_TRACE_SPANS"):
        monkeypatch.delenv(var, raising=False)
    clear_ambient()
    yield
    clear_ambient()


@pytest.fixture
def traced_server(tmp_path):
    options = ServeOptions(shards=1,
                           cache_dir=str(tmp_path / "cache"),
                           manifest_dir=str(tmp_path / "runs"),
                           trace_sample=0.0)
    with LiveServer(options) as server:
        yield server


class TestTraceparentPropagation:
    def test_one_connected_tree_across_the_http_boundary(self,
                                                         traced_server):
        header = mint_traceparent()
        client_trace_id = header.split("-")[1]
        client_span_id = header.split("-")[2]
        with traced_server.client() as client:
            status, body = client.submit(tiny_spec(), traceparent=header)
        assert status == 200
        meta = body["meta"]
        assert meta["trace_id"] == client_trace_id
        spans_path = meta["spans"]
        records, bad = read_spans(spans_path)
        assert bad == 0
        groups = group_by_trace(records)
        assert set(groups) == {client_trace_id}
        tree = build_tree(records)
        assert len(tree["roots"]) == 1
        root = tree["roots"][0]
        # The gateway's root span continues the client's context.
        assert root["name"] == "http.request"
        assert root["parent_id"] == client_span_id
        names = {r["name"] for r in tree["by_id"].values()}
        assert {"http.request", "request.parse", "dispatch", "run",
                "job", "sim.execute"} <= names
        # ... and the engine's run directory holds the whole tree.
        manifest = json.loads(
            open(spans_path.replace("spans.jsonl",
                                    "manifest.json")).read())
        assert manifest["run_id"] in spans_path

    def test_unsampled_header_stays_span_free(self, traced_server,
                                              tmp_path):
        header = mint_traceparent(sampled=False)
        with traced_server.client() as client:
            status, body = client.submit(tiny_spec(seed=1),
                                         traceparent=header)
        assert status == 200
        assert "trace_id" not in body["meta"]
        assert body["meta"]["spans"] is None
        assert list((tmp_path / "runs").rglob("spans.jsonl")) == []

    def test_malformed_header_is_tolerated(self, traced_server):
        with traced_server.client() as client:
            status, body = client.submit(
                tiny_spec(seed=2), traceparent="not-a-traceparent")
            assert status == 200
            assert "trace_id" not in body["meta"]
            _, stats = client.stats()
        counters = stats["metrics"]["counters"]
        assert counters.get("serve.trace.malformed_context") == 1

    def test_foreign_header_is_counted_and_continued(self, traced_server):
        header = mint_traceparent()
        with traced_server.client() as client:
            status, _ = client.submit(tiny_spec(seed=3),
                                      traceparent=header)
            assert status == 200
            _, stats = client.stats()
        counters = stats["metrics"]["counters"]
        assert counters.get("serve.trace.foreign_context") == 1
        assert counters.get("serve.trace.sampled") == 1

    def test_traced_results_digit_exact_vs_untraced(self, traced_server):
        spec = tiny_spec(seed=4)
        with traced_server.client() as client:
            _, untraced = client.submit(spec)
            _, traced = client.submit(spec,
                                      traceparent=mint_traceparent())
        assert traced["result"] == untraced["result"]

    def test_cache_hit_flushes_to_fallback_file(self, traced_server,
                                                tmp_path):
        spec = tiny_spec(seed=5)
        with traced_server.client() as client:
            client.submit(spec)  # warm the cache, untraced
            status, body = client.submit(spec,
                                         traceparent=mint_traceparent())
        assert status == 200
        assert body["meta"]["cache"] == "hit"
        spans_path = body["meta"]["spans"]
        assert spans_path.endswith("serve_spans.jsonl")
        records, _ = read_spans(spans_path)
        names = {r["name"] for r in records}
        assert "http.request" in names
        assert "cache.probe" in names
        assert "dispatch" not in names  # never reached the engine


class TestHealthz:
    def test_healthz_carries_build_and_subsystem_metadata(self,
                                                          traced_server):
        with traced_server.client() as client:
            status, health = client.healthz()
        assert status == 200
        assert health["schemas"]["spans"] == 1
        assert set(health["schemas"]) == {"job", "telemetry", "manifest",
                                          "journal", "spans"}
        subsystems = health["subsystems"]
        assert subsystems["trace"] is False  # trace_sample 0.0
        assert subsystems["durable"] is False
        assert "git_sha" in health

    def test_stats_exposes_trace_and_flight_state(self, traced_server):
        with traced_server.client() as client:
            _, stats = client.stats()
        assert stats["trace"]["sample"] == 0.0
        flight = stats["trace"]["flight"]
        assert flight["capacity"] > 0
        assert set(flight) >= {"depth", "records", "dropped", "dumps"}


class TestServerSideSampling:
    def test_gateway_rate_traces_headerless_requests(self, tmp_path):
        options = ServeOptions(shards=1,
                               cache_dir=str(tmp_path / "cache"),
                               manifest_dir=str(tmp_path / "runs"),
                               trace_sample=1.0)
        with LiveServer(options) as server:
            with server.client() as client:
                status, body = client.submit(tiny_spec(seed=6))
                _, health = client.healthz()
        assert status == 200
        assert body["meta"]["trace_id"]
        assert health["subsystems"]["trace"] is True
        records, _ = read_spans(body["meta"]["spans"])
        tree = build_tree(records)
        assert len(tree["roots"]) == 1
        assert tree["roots"][0]["name"] == "http.request"
        assert tree["roots"][0].get("parent_id") is None  # minted here
