"""The application lab: registry, bypass controller, SimJob.app plumbing.

The bypass controller's classification logic is unit-tested with
synthetic miss references (streaming vs reusing pcs), the experiment
registry is exercised end-to-end at tiny run sizes on the ``lab``
machine, and the exec-engine integration is pinned down: ``SimJob.app``
normalizes the policy the same way ``SimJob.bar`` does, an experiment is
one cacheable job, and the second run of the same experiment is a cache
hit with identical results.
"""

import json
from types import SimpleNamespace

import pytest

from repro.apps import APP_EXPERIMENTS, AdaptiveBypassController, \
    run_app_experiment
from repro.exec import ExecOptions, JobRunner, SimJob, execute_job

TINY = dict(instructions=1500, warmup=750)


def miss(pc, addr):
    return SimpleNamespace(pc=pc, addr=addr)


# -- the registry -------------------------------------------------------------


class TestRegistry:
    def test_registered_experiments(self):
        assert sorted(APP_EXPERIMENTS) == ["bypass", "miss_profile",
                                           "prefetch_schedule"]

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown app experiment"):
            run_app_experiment("warmup_oracle", "compress")


# -- the bypass controller ----------------------------------------------------


class TestBypassController:
    def test_streaming_pc_is_classified(self):
        controller = AdaptiveBypassController(line_size=32,
                                              classify_after=4)
        for n in range(4):  # every miss on a fresh line
            controller._on_miss(miss(pc=0x100, addr=n * 64))
        assert 0x100 in controller.streaming_pcs

    def test_reusing_pc_is_not_classified(self):
        controller = AdaptiveBypassController(line_size=32,
                                              classify_after=4)
        for _ in range(8):  # every miss revisits the same line
            controller._on_miss(miss(pc=0x100, addr=0x2000))
        assert 0x100 not in controller.streaming_pcs
        assert controller.marked == 0

    def test_marks_only_after_classification(self):
        controller = AdaptiveBypassController(line_size=32,
                                              classify_after=4)
        for n in range(6):
            controller._on_miss(miss(pc=0x100, addr=n * 64))
        # First 4 misses classify; the 2 after that mark their lines.
        assert controller.marked == 2

    def test_should_bypass_consumes_the_mark_once(self):
        controller = AdaptiveBypassController(line_size=32,
                                              classify_after=1)
        controller._on_miss(miss(pc=0x100, addr=0))       # classifies
        controller._on_miss(miss(pc=0x100, addr=0x40))    # marks line 0x40
        assert controller.should_bypass(0x44) is True     # same line
        assert controller.should_bypass(0x44) is False    # consumed
        assert controller.bypassed == 1

    def test_unmarked_line_is_not_bypassed(self):
        controller = AdaptiveBypassController()
        assert controller.should_bypass(0x1234) is False

    def test_pc_isolation(self):
        """One pc streaming does not taint another pc's lines."""
        controller = AdaptiveBypassController(line_size=32,
                                              classify_after=2)
        for n in range(4):
            controller._on_miss(miss(pc=0x100, addr=n * 32))
        controller._on_miss(miss(pc=0x200, addr=0x9000))
        assert 0x200 not in controller.streaming_pcs

    @pytest.mark.parametrize("kwargs", [
        dict(line_size=48),
        dict(classify_after=0),
    ])
    def test_invalid_arguments_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdaptiveBypassController(**kwargs)


# -- experiments end to end ---------------------------------------------------


EXPECTED_KEYS = {
    "miss_profile": {"baseline_cycles", "cycles", "overhead",
                     "handler_invocations", "l1_miss_rate", "hottest"},
    "prefetch_schedule": {"baseline_cycles", "cycles", "speedup",
                          "prefetches_launched", "miss_rate"},
    "bypass": {"baseline_cycles", "cycles", "speedup", "streaming_pcs",
               "bypassed_fills", "miss_rate"},
}


class TestExperiments:
    @pytest.mark.parametrize("name", sorted(APP_EXPERIMENTS))
    def test_smoke_and_result_shape(self, name):
        result = run_app_experiment(name, "compress", **TINY)
        assert result["experiment"] == name
        assert result["benchmark"] == "compress"
        assert result["machine"] == "lab"
        assert EXPECTED_KEYS[name] <= set(result)
        assert result["cycles"] > 0
        json.dumps(result)  # JSON-able, so the exec cache can hold it

    def test_deterministic(self):
        first = run_app_experiment("bypass", "compress", **TINY)
        second = run_app_experiment("bypass", "compress", **TINY)
        assert first == second

    def test_policy_reaches_the_simulation(self):
        # Needs enough instructions for the 4-way lab L1's victim choices
        # to diverge; below ~3000 the policies happen to agree on compress.
        size = dict(instructions=3000, warmup=1500)
        lru = run_app_experiment("bypass", "compress", **size)
        rrip = run_app_experiment("bypass", "compress", policy="rrip",
                                  **size)
        assert rrip["policy"] == "rrip"
        assert rrip["baseline_cycles"] != lru["baseline_cycles"]

    def test_miss_profiler_finds_hot_references(self):
        result = run_app_experiment("miss_profile", "compress", **TINY)
        assert result["handler_invocations"] > 0
        assert result["hottest"], "profiler saw misses but ranked none"
        top = result["hottest"][0]
        assert top["pc"].startswith("0x") and top["misses"] > 0


# -- exec-engine integration --------------------------------------------------


def app_job(**overrides):
    fields = dict(experiment="bypass", benchmark="compress",
                  machine="lab", seed=0, **TINY)
    fields.update(overrides)
    return SimJob.app(**fields)


class TestSimJobApp:
    def test_kind_and_label(self):
        job = app_job()
        assert job.kind == "app"
        assert job.label == "compress/lab/bypass"

    def test_default_policy_stays_out_of_the_key(self):
        assert "policy" not in app_job().config_dict()
        assert app_job().cache_key() == app_job(policy="lru").cache_key()

    def test_policy_changes_the_key(self):
        assert app_job().cache_key() != app_job(policy="rrip").cache_key()
        assert app_job(policy="rrip").config_dict()["policy"] == "rrip"

    def test_execute_job_dispatches_to_the_registry(self):
        result = execute_job(app_job())
        assert result["experiment"] == "bypass"
        assert result == run_app_experiment("bypass", "compress", **TINY)

    def test_second_run_is_a_cache_hit(self, tmp_path):
        def fresh_runner():
            return JobRunner(ExecOptions(jobs=1, cache=True,
                                         cache_dir=str(tmp_path),
                                         backoff=0.01))

        first = fresh_runner()
        cold = first.run([app_job()])
        assert first.stats.cache_hits == 0
        second = fresh_runner()
        warm = second.run([app_job()])
        assert second.stats.cache_hits == 1
        assert warm == cold


class TestAppsCli:
    def test_single_experiment(self, capsys, tmp_path):
        from repro.harness.apps_cli import apps_main

        out_path = tmp_path / "result.json"
        code = apps_main(["bypass", "--benchmark", "compress", "--quick",
                          "--no-cache", "--json", str(out_path)])
        assert code == 0
        captured = capsys.readouterr()
        assert "apps bypass — compress on lab" in captured.out
        payload = json.loads(out_path.read_text())
        assert payload["experiment"] == "bypass"

    def test_unknown_benchmark_rejected(self, capsys):
        from repro.harness.apps_cli import apps_main

        with pytest.raises(SystemExit):
            apps_main(["bypass", "--benchmark", "doom"])
        assert "unknown benchmark" in capsys.readouterr().err
