"""Fault injection against the live simulator: every chaos fault class
must be detected by its named invariant within a bounded window."""

import random

import pytest

from tests.helpers import make_inorder, make_ooo, small_hierarchy, trap_config
from repro.core import TrapStyle
from repro.isa.instructions import alu, load
from repro.sanitize import (
    CAUGHT_BY,
    FAULT_CLASSES,
    ChaosInjector,
    InvariantViolation,
    Sanitizer,
)

#: Detection must land within this many cycles of the corruption.  With
#: ``every=1`` the sanitizer sweeps on every memory access, so detection
#: is normally same-access; the bound leaves slack for quiet stretches
#: of ALU-only work between references.
DETECTION_BOUND = 2_000


def stream(n=6000, seed=7, span_bits=14):
    """A miss-heavy informing-load mix over a working set >> the L1."""
    rng = random.Random(seed)
    insts = []
    pc = 0x1000
    for _ in range(n):
        if rng.random() < 0.4:
            insts.append(load(rng.randrange(0, 1 << span_bits) & ~3,
                              dest=2, srcs=(1,), pc=pc, informing=True))
        else:
            insts.append(alu(dest=3, srcs=(2,), pc=pc))
        pc += 4
    return insts


def sanitized_core(maker, extended=False, style=TrapStyle.BRANCH_LIKE):
    core = maker(informing=trap_config(style=style),
                 hierarchy=small_hierarchy(extended=extended))
    san = Sanitizer(every=1)
    san.attach(core)
    return core, san


def assert_caught(info, injector, fault):
    assert injector.fired, f"{fault}: the injector never found a trigger"
    violation = info.value
    assert violation.invariant in CAUGHT_BY[fault], (
        f"{fault} surfaced as {violation.invariant}, expected one of "
        f"{CAUGHT_BY[fault]}")
    assert injector.fired_cycle is not None
    lag = violation.cycle - injector.fired_cycle
    assert 0 <= lag <= DETECTION_BOUND, (
        f"{fault} detected {lag} cycles after injection "
        f"(fired at {injector.fired_cycle}, caught at {violation.cycle})")


class TestInjectorContract:
    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError):
            ChaosInjector("bit_rot")

    def test_skip_defaults_from_seed(self):
        assert ChaosInjector("mshr_leak", seed=7).skip == 3
        assert ChaosInjector("mshr_leak", skip=0).skip == 0

    def test_every_fault_class_has_a_detecting_invariant(self):
        assert set(CAUGHT_BY) == set(FAULT_CLASSES)

    def test_corrupt_mhrr_needs_an_engine(self):
        with pytest.raises(ValueError):
            ChaosInjector("corrupt_mhrr").arm(small_hierarchy())

    def test_clean_run_raises_nothing(self):
        """Control: the same cores and streams, chaos-free, are clean."""
        for maker in (make_inorder, make_ooo):
            core, san = sanitized_core(maker)
            core.run(stream())
            assert san.checks_passed > 1000


SIMULATOR_FAULTS = ["mshr_leak", "duplicate_tag", "spurious_trap",
                    "corrupt_mhrr"]


class TestSimulatorFaults:
    @pytest.mark.parametrize("fault", SIMULATOR_FAULTS)
    @pytest.mark.parametrize("maker", [make_inorder, make_ooo])
    def test_fault_caught_by_named_invariant(self, maker, fault):
        core, _ = sanitized_core(maker)
        injector = ChaosInjector(fault, skip=2).arm(core)
        with pytest.raises(InvariantViolation) as info:
            core.run(stream())
        assert_caught(info, injector, fault)

    def test_skip_invalidate_caught_on_ooo(self):
        """§3.3's squash-invalidation, silently dropped: only the OoO
        machine with exception-like traps squashes *filled* extended-
        lifetime entries (the in-order replay trap fires 2 cycles after
        issue, long before any fill returns)."""
        core, _ = sanitized_core(make_ooo, extended=True,
                                 style=TrapStyle.EXCEPTION_LIKE)
        injector = ChaosInjector("skip_invalidate", skip=0).arm(core)
        with pytest.raises(InvariantViolation) as info:
            core.run(stream())
        assert_caught(info, injector, "skip_invalidate")

    def test_unfired_injector_is_harmless(self):
        """A trigger point past the run's last eligible event corrupts
        nothing, and the run completes clean."""
        core, _ = sanitized_core(make_inorder)
        injector = ChaosInjector("mshr_leak", skip=10**9).arm(core)
        core.run(stream(n=2000))
        assert not injector.fired

    def test_detection_without_core_hooks(self):
        """Faults in the memory subsystem are caught by a sanitizer
        attached to a bare hierarchy — no pipeline required."""
        hierarchy = small_hierarchy()
        san = Sanitizer(every=1)
        san.attach_hierarchy(hierarchy)
        injector = ChaosInjector("duplicate_tag", skip=0).arm(hierarchy)
        rng = random.Random(3)
        with pytest.raises(InvariantViolation) as info:
            for cycle in range(0, 40_000, 4):
                hierarchy.access(rng.randrange(0, 1 << 14) & ~3, False,
                                 cycle)
        assert_caught(info, injector, "duplicate_tag")
