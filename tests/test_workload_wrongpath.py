"""Unit tests for wrong-path generation."""

import itertools

import pytest

from repro.isa import OpClass, branch
from repro.workloads.wrongpath import (
    make_wrong_path_factory,
    spec92_wrong_path_factory,
)


class TestFactory:
    def test_deterministic_per_branch(self):
        factory = make_wrong_path_factory(seed=7)
        br = branch(True, pc=0x1234)
        a = [(i.op, i.addr) for i in itertools.islice(factory(br), 30)]
        b = [(i.op, i.addr) for i in itertools.islice(factory(br), 30)]
        assert a == b

    def test_different_branches_different_paths(self):
        factory = make_wrong_path_factory(seed=7)
        a = [(i.op, i.addr)
             for i in itertools.islice(factory(branch(True, pc=0x1000)), 30)]
        b = [(i.op, i.addr)
             for i in itertools.islice(factory(branch(True, pc=0x2000)), 30)]
        assert a != b

    def test_loads_land_in_data_region(self):
        factory = make_wrong_path_factory(data_base=0x500000,
                                          data_span=1 << 16)
        insts = list(itertools.islice(factory(branch(True, pc=0x40)), 200))
        loads = [i for i in insts if i.op is OpClass.LOAD]
        assert loads
        for inst in loads:
            assert 0x500000 <= inst.addr < 0x500000 + (1 << 16) + 4096

    def test_mem_fraction_respected(self):
        factory = make_wrong_path_factory(mem_fraction=0.5)
        insts = list(itertools.islice(factory(branch(True, pc=0x40)), 400))
        loads = sum(1 for i in insts if i.op is OpClass.LOAD)
        assert loads / len(insts) == pytest.approx(0.5, abs=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_wrong_path_factory(mem_fraction=0.95)
        with pytest.raises(ValueError):
            make_wrong_path_factory(data_span=100, offset_bias=4096)

    def test_spec92_anchor(self):
        factory = spec92_wrong_path_factory("compress")
        insts = list(itertools.islice(factory(branch(True, pc=0x40)), 100))
        assert any(i.op is OpClass.LOAD for i in insts)

    def test_spec92_unknown(self):
        with pytest.raises(KeyError):
            spec92_wrong_path_factory("gcc")


class TestOnCore:
    def test_wrong_path_pollution_measurable(self):
        """With wrong-path fetch enabled, mispredicting code does extra
        cache traffic that the squash machinery must clean up."""
        from repro.harness import R10000_SPEC, build_core
        from repro.workloads import spec92_workload
        from repro.workloads.wrongpath import spec92_wrong_path_factory

        workload = spec92_workload("eqntott")  # branchy integer code
        plain = build_core(R10000_SPEC)
        plain.run(workload.stream(20_000), max_app_insts=20_000)

        wp = build_core(R10000_SPEC, extended_mshr=True,
                        wrong_path_factory=spec92_wrong_path_factory(
                            "eqntott"))
        stats = wp.run(spec92_workload("eqntott").stream(20_000),
                       max_app_insts=20_000)
        assert wp.wrong_path_squashed > 0
        assert stats.app_instructions >= 20_000
        # All wrong-path MSHRs released; capacity unharmed.
        assert wp.hierarchy.mshrs.occupancy() == 0
        assert wp.hierarchy.mshrs.high_water <= 8
