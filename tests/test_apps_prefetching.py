"""Unit tests for the prefetching clients (§4.1.2)."""

import pytest

from repro.apps import AdaptivePrefetcher, insert_static_prefetches
from repro.isa import OpClass, load
from tests.helpers import make_ooo, small_hierarchy


def OpAlu(i, src=2):
    from repro.isa import alu
    return alu(dest=3, srcs=(src,), pc=0x2000 + 4 * (i % 8))


def streaming_trace(n, base=0x100000, stride=64, pc=0x1000):
    """A strided sweep that misses every reference without prefetching."""
    trace = []
    for i in range(n):
        trace.append(load(base + stride * i, dest=2, pc=pc))
        trace.append(OpAlu(i))
    return trace


def l2_resident_sweep(sweeps=3, lines=96, stride=64, base=0x100000,
                      pc=0x1000, compute=3):
    """Repeated sweeps over a region that fits L2 but not the tiny L1.

    After the first (warming) sweep every reference misses L1 and hits L2
    at 12 cycles — the regime where a short-lead prefetch pays off and
    memory bandwidth is not the wall.
    """
    trace = []
    for s in range(sweeps):
        for i in range(lines):
            trace.append(load(base + stride * i, dest=2, pc=pc))
            for c in range(compute):
                trace.append(OpAlu(i, src=2 if c == 0 else 3))
    return trace


def big_l2_hierarchy():
    from repro.memory import CacheConfig
    from tests.helpers import small_hierarchy
    return small_hierarchy(l1=CacheConfig(size=4 * 1024, assoc=2,
                                          line_size=32),
                           l2=CacheConfig(size=64 * 1024, assoc=2,
                                          line_size=32))


class TestAdaptivePrefetcher:
    def test_reduces_misses_and_time_on_memory_latency_stream(self):
        # The profitable regime for handler-launched prefetching: misses
        # go all the way to memory (~75 cycles), and enough computation
        # per reference that memory bandwidth is not the bottleneck and
        # the prefetch lead covers the latency.
        trace = l2_resident_sweep(sweeps=1, lines=300, compute=22)
        base_core = make_ooo(hierarchy=big_l2_hierarchy())
        base = base_core.run(list(trace))
        pf = AdaptivePrefetcher(degree=5)
        pf_core = make_ooo(hierarchy=big_l2_hierarchy(),
                           informing=pf.informing_config())
        informed = pf_core.run(list(trace))
        base_misses = base_core.hierarchy.stats.l1_misses
        assert pf.launched > 0
        # Handler-launched prefetches convert most demand misses to hits.
        assert pf_core.engine.invocations < base_misses * 0.7
        assert informed.cycles < base.cycles

    def test_stride_learned_per_pc(self):
        pf = AdaptivePrefetcher(degree=1)
        core = make_ooo(informing=pf.informing_config())
        core.run(streaming_trace(60))
        assert pf._stride.get(0x1000) == 64

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            AdaptivePrefetcher(degree=0)

    def test_prefetches_never_trap(self):
        pf = AdaptivePrefetcher(degree=2)
        core = make_ooo(informing=pf.informing_config())
        core.run(streaming_trace(60))
        # Handler bodies are prefetch+jump only; no recursive invocations
        # from handler code itself.
        assert pf.invocations == core.engine.invocations


class TestStaticPrefetchInsertion:
    def test_rewriter_inserts_before_hot_refs(self):
        trace = [load(0x1000 * i, dest=2, pc=0x40) for i in range(5)]
        out = list(insert_static_prefetches(iter(trace), {0x40},
                                            distance_lines=2))
        ops = [inst.op for inst in out]
        assert ops.count(OpClass.PREFETCH) == 5
        assert out[0].op is OpClass.PREFETCH
        assert out[0].addr == trace[0].addr + 2 * 32

    def test_cold_refs_untouched(self):
        trace = [load(0x1000, dest=2, pc=0x40)]
        out = list(insert_static_prefetches(iter(trace), {0x99}))
        assert len(out) == 1

    def test_profile_guided_flow_reduces_misses(self):
        """Profile once, insert static prefetches, re-run: fewer misses."""
        from repro.apps import MissProfiler
        trace = l2_resident_sweep()

        profiler = MissProfiler()
        profile_core = make_ooo(hierarchy=big_l2_hierarchy(),
                                informing=profiler.informing_config())
        profile_core.run(profiler.counting_stream(iter(list(trace))))
        hot = {pc for pc, n, _rate in profiler.profile.hottest(4) if n > 5}
        assert 0x1000 in hot

        base_core = make_ooo(hierarchy=big_l2_hierarchy())
        base_core.run(list(trace))
        opt_core = make_ooo(hierarchy=big_l2_hierarchy())
        opt_core.run(insert_static_prefetches(iter(list(trace)), hot,
                                              distance_lines=6))
        assert (opt_core.hierarchy.stats.l1_misses
                < base_core.hierarchy.stats.l1_misses * 0.7)

    def test_invalid_distance(self):
        with pytest.raises(ValueError):
            list(insert_static_prefetches(iter([]), set(), distance_lines=0))
