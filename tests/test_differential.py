"""Differential testing: both cores vs a functional cache reference model.

Random synthetic workloads of dependency-chained loads (each load's source
is the previous load's destination, so references fully serialise on both
machines) are replayed on the in-order and out-of-order cores with
informing disabled.  Because each access only begins after the previous
fill has landed, a simple functional set-associative LRU model that
installs lines immediately predicts the exact per-reference hit/miss
outcome sequence — which we read back from a :class:`repro.obs.Observer`
event trace and cross-check against the hierarchy's aggregate stats.
"""

import random

import pytest

from repro.isa.instructions import DynInst
from repro.isa.opclass import OpClass
from repro.obs import Observer
from repro.obs.events import L1_HIT, L1_MERGE, L1_MISS

from .helpers import make_inorder, make_ooo, small_hierarchy

LINE_SIZE = 32
L1_SETS = 8      # small_hierarchy: 512 B / (2 ways * 32 B line)
L1_WAYS = 2


class FunctionalLRU:
    """Set-associative LRU cache that installs missing lines immediately."""

    def __init__(self, num_sets=L1_SETS, ways=L1_WAYS, line_size=LINE_SIZE):
        self.num_sets = num_sets
        self.ways = ways
        self.line_shift = line_size.bit_length() - 1
        self.sets = [[] for _ in range(num_sets)]

    def access(self, addr):
        """Reference one address; returns True on hit."""
        line = addr >> self.line_shift
        lines = self.sets[line & (self.num_sets - 1)]
        if line in lines:
            lines.remove(line)
            lines.append(line)
            return True
        if len(lines) >= self.ways:
            lines.pop(0)
        lines.append(line)
        return False


def chained_loads(rng, count):
    """A trace of loads where each depends on the previous one's result."""
    pool = [rng.randrange(0, 5 * L1_SETS * L1_WAYS) * LINE_SIZE
            for _ in range(3 * L1_SETS * L1_WAYS)]
    trace = []
    for i in range(count):
        trace.append(DynInst(
            OpClass.LOAD,
            dest=1 + (i % 2),
            srcs=(1 + ((i + 1) % 2),) if i else (),
            addr=rng.choice(pool),
            pc=0x4000 + 8 * (i % 64)))
    return trace


def _run_case(make_core, seed):
    rng = random.Random(seed)
    count = rng.randint(20, 80)
    trace = chained_loads(rng, count)

    model = FunctionalLRU()
    expected = [model.access(inst.addr) for inst in trace]

    hierarchy = small_hierarchy()
    core = make_core(hierarchy=hierarchy)
    obs = Observer(trace=True)
    obs.attach(core)
    stats = core.run(iter(trace), max_app_insts=count, warmup_insts=0)
    obs.finish()

    outcomes = []
    for event in obs.events:
        if event["kind"] == L1_HIT:
            outcomes.append(True)
        elif event["kind"] == L1_MISS:
            outcomes.append(False)
        else:
            # Serialised chains never overlap misses, so merges would mean
            # the serialisation premise (and the model) no longer holds.
            assert event["kind"] != L1_MERGE, \
                f"seed {seed}: unexpected secondary miss"
    assert outcomes == expected, f"seed {seed}: hit/miss sequence diverged"

    mem = hierarchy.stats
    assert mem.l1_accesses == count
    assert mem.l1_hits == sum(expected)
    assert mem.l1_misses == count - sum(expected)
    assert mem.l1_secondary_misses == 0
    assert stats.app_instructions == count
    return count


class TestCoreVsReferenceModel:
    """Per-reference hit/miss agreement over 100 seeds per core."""

    @pytest.mark.parametrize("block", range(10))
    def test_inorder_matches_functional_model(self, block):
        for seed in range(10 * block, 10 * block + 10):
            _run_case(make_inorder, seed)

    @pytest.mark.parametrize("block", range(10))
    def test_ooo_matches_functional_model(self, block):
        for seed in range(10 * block, 10 * block + 10):
            _run_case(make_ooo, seed)

    def test_cores_agree_with_each_other(self):
        """Same workload, both machines: identical outcome sequences."""
        for seed in (500, 501, 502, 503, 504):
            rng = random.Random(seed)
            trace = chained_loads(rng, 60)
            sequences = []
            for make_core in (make_inorder, make_ooo):
                core = make_core(hierarchy=small_hierarchy())
                obs = Observer(trace=True)
                obs.attach(core)
                core.run(iter(trace), max_app_insts=60, warmup_insts=0)
                sequences.append([e["kind"] == L1_HIT for e in obs.events
                                  if e["kind"] in (L1_HIT, L1_MISS)])
            assert sequences[0] == sequences[1], f"seed {seed}"
