"""``bench replacement``: the ablation grid and its committed artifact.

A tiny live grid proves the fold logic (deltas vs lru, spread, lru
forced into the policy list); the committed
``results/replacement_ablation.json`` and ``results/golden/explain``
artifacts are then checked for internal consistency — the acceptance
claim of this lab is that at least one workload separates the policies
measurably *and* the explain diagnosis names the mechanism, so a stale
or hand-edited artifact must fail loudly here.
"""

import json
from pathlib import Path

import pytest

from repro.harness.replacement import (
    render_ablation,
    run_ablation,
    write_explain_artifacts,
)

REPO = Path(__file__).resolve().parents[1]
ARTIFACT = REPO / "results" / "replacement_ablation.json"
EXPLAIN_DIR = REPO / "results" / "golden" / "explain"


class TestLiveGrid:
    @pytest.fixture(scope="class")
    def payload(self):
        return run_ablation(["compress"], ["lru", "rrip"], "lab",
                            3000, 1500)

    def test_cells_and_deltas(self, payload):
        row = payload["cells"]["compress"]
        assert row["lru"]["delta_vs_lru"] == 0.0
        expected = round(row["rrip"]["cycles"] / row["lru"]["cycles"] - 1.0,
                         6)
        assert row["rrip"]["delta_vs_lru"] == expected

    def test_spread_is_max_abs_delta(self, payload):
        row = payload["cells"]["compress"]
        assert payload["spread"]["compress"] == round(
            max(abs(cell["delta_vs_lru"]) for cell in row.values()), 6)

    def test_render_lists_every_policy_column(self, payload):
        text = render_ablation(payload)
        assert "compress" in text and "rrip" in text and "spread" in text

    def test_explain_artifacts_written(self, payload, tmp_path):
        written = write_explain_artifacts(payload, str(tmp_path),
                                          trace_threshold=2.0)
        # Threshold of 200% suppresses every raw trace; the analyses
        # (lru + the one rival policy) must still be written.
        names = sorted(Path(p).name for p in written)
        assert names == ["compress_lab_N.lru.explain.json",
                         "compress_lab_N.rrip.explain.json"]
        analysis = json.loads((tmp_path / names[1]).read_text())
        assert analysis["source"]["policy"] == "rrip"
        assert "diagnosis" in analysis


class TestCommittedArtifact:
    @pytest.fixture(scope="class")
    def artifact(self):
        assert ARTIFACT.is_file(), "committed ablation artifact missing"
        return json.loads(ARTIFACT.read_text())

    def test_shape(self, artifact):
        assert artifact["kind"] == "replacement_ablation"
        assert artifact["machine"] == "lab"
        for benchmark in artifact["benchmarks"]:
            row = artifact["cells"][benchmark]
            assert set(row) == set(artifact["policies"])

    def test_a_workload_separates_the_policies(self, artifact):
        """The acceptance bar: >= 1% spread on at least one benchmark."""
        assert max(artifact["spread"].values()) >= 0.01

    def test_explain_names_the_winning_mechanism(self, artifact):
        """For the widest-spread benchmark, the committed explain
        analysis of its best non-lru policy must name that policy
        family in its diagnosis."""
        benchmark = max(artifact["spread"], key=artifact["spread"].get)
        row = artifact["cells"][benchmark]
        winner = min((p for p in row if p != "lru"),
                     key=lambda p: row[p]["cycles"])
        path = (EXPLAIN_DIR
                / f"{benchmark}_{artifact['machine']}_N.{winner}.explain.json")
        assert path.is_file(), f"missing committed explain for {winner}"
        analysis = json.loads(path.read_text())
        assert winner.replace("b", "") in analysis["diagnosis"] or \
            winner in analysis["diagnosis"]

    def test_committed_traces_parse(self):
        traces = sorted(EXPLAIN_DIR.glob("*.events.jsonl"))
        assert traces, "no committed explain traces"
        from repro.obs.export import read_jsonl
        for trace in traces:
            events = read_jsonl(str(trace), strict=True)
            assert events and all("kind" in event for event in events)
