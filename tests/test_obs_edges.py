"""Obs edge paths: empty traces, corrupt JSONL, OpenMetrics round-trip."""

import json

import pytest

from repro.obs import (
    Registry,
    parse_openmetrics,
    read_jsonl,
    render_report,
    summarize,
    to_openmetrics,
    write_openmetrics,
)


class TestEmptyTrace:
    def test_summarize_empty_event_list(self):
        summary = summarize([])
        assert summary["events"] == 0
        assert summary["accesses"] == 0
        assert summary["miss_rate"] == 0.0
        assert summary["cycles"] == (0, 0)

    def test_render_report_on_empty_trace(self):
        """A cell that never touched memory must still render cleanly."""
        text = render_report(summarize([]), title="empty")
        assert "obs report — empty" in text
        assert "0 events" in text
        # No division-by-zero percentages: blanks instead.
        assert "-" in text


class TestCorruptJsonl:
    def _write(self, tmp_path, lines):
        path = tmp_path / "trace.events.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_truncated_final_line_is_skipped(self, tmp_path):
        good = {"kind": "l1.hit", "cycle": 5}
        path = self._write(tmp_path, [
            json.dumps(good),
            json.dumps({"kind": "l1.miss", "cycle": 9})[:-7],  # cut short
        ])
        assert read_jsonl(path) == [good]

    def test_blank_lines_are_ignored(self, tmp_path):
        good = {"kind": "l1.hit", "cycle": 5}
        path = self._write(tmp_path, ["", json.dumps(good), "   ", ""])
        assert read_jsonl(path) == [good]

    def test_strict_mode_raises_with_location(self, tmp_path):
        path = self._write(tmp_path, [
            json.dumps({"kind": "l1.hit", "cycle": 5}),
            "{garbled",
        ])
        with pytest.raises(ValueError, match=r":2: corrupt JSONL line"):
            read_jsonl(path, strict=True)

    def test_recovered_prefix_still_summarizes(self, tmp_path):
        events = [{"kind": "l1.hit", "cycle": c, "address": 0, "level": 1}
                  for c in range(3)]
        lines = [json.dumps(e) for e in events] + ["{truncat"]
        summary = summarize(read_jsonl(self._write(tmp_path, lines)))
        assert summary["hits"] == 3
        assert summary["events"] == 3


def populated_registry():
    registry = Registry()
    registry.counter("l1.hit").inc(120)
    registry.counter("l1.miss").inc(7)
    latency = registry.histogram("l1.miss_latency")
    for value in (0, 1, 3, 8, 8, 21, 100):
        latency.record(value)
    return registry


class TestOpenMetrics:
    def test_round_trip_is_lossless(self):
        registry = populated_registry()
        parsed = parse_openmetrics(to_openmetrics(registry))
        expected = registry.to_dict()
        assert parsed["counters"] == {"l1_hit": 120, "l1_miss": 7}
        assert parsed["histograms"]["l1_miss_latency"] == \
            expected["histograms"]["l1.miss_latency"]

    def test_counters_become_total_samples(self):
        text = to_openmetrics(populated_registry())
        assert "# TYPE repro_l1_hit counter" in text
        assert "repro_l1_hit_total 120" in text
        assert text.endswith("# EOF\n")

    def test_histogram_buckets_are_cumulative_le_edges(self):
        registry = Registry()
        hist = registry.histogram("lat")
        for value in (0, 1, 3, 8):  # buckets 0, 1, 2, 8
            hist.record(value)
        text = to_openmetrics(registry)
        assert 'repro_lat_bucket{le="0"} 1' in text
        assert 'repro_lat_bucket{le="1"} 2' in text
        assert 'repro_lat_bucket{le="3"} 3' in text
        assert 'repro_lat_bucket{le="15"} 4' in text
        assert 'repro_lat_bucket{le="+Inf"} 4' in text
        assert "repro_lat_sum 12" in text
        assert "repro_lat_count 4" in text

    def test_empty_registry_exports_just_eof(self):
        assert to_openmetrics(Registry()) == "# EOF\n"
        assert parse_openmetrics("# EOF\n") == {"counters": {},
                                                "histograms": {}}

    def test_dict_payload_accepted(self):
        payload = populated_registry().to_dict()
        assert to_openmetrics(payload) == \
            to_openmetrics(populated_registry())

    def test_write_openmetrics_file(self, tmp_path):
        path = tmp_path / "metrics.om"
        write_openmetrics(populated_registry(), str(path))
        parsed = parse_openmetrics(path.read_text())
        assert parsed["counters"]["l1_hit"] == 120

    def test_custom_prefix(self):
        text = to_openmetrics(populated_registry(), prefix="sim_")
        assert "sim_l1_hit_total 120" in text
        parsed = parse_openmetrics(text, prefix="sim_")
        assert parsed["counters"]["l1_hit"] == 120
