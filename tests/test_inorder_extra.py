"""Additional in-order core coverage: FU contention, latencies, I-cache."""

import pytest

from repro.isa import OpClass, alu, branch, fp_op, load
from repro.isa.instructions import DynInst
from tests.helpers import make_inorder, small_hierarchy


class TestFunctionalUnitContention:
    def test_fp_ops_use_fp_units(self):
        # Independent FP ops: 2 FP units, latency 4 (fully pipelined).
        trace = [fp_op(dest=33 + (i % 8), pc=0x1000 + 4 * i)
                 for i in range(200)]
        stats = make_inorder().run(trace)
        assert 1.5 < stats.ipc <= 2.0

    def test_mixed_int_fp_exceeds_two_ipc(self):
        # 2 INT + 2 FP independent ops per cycle can reach width 4...
        trace = []
        for i in range(100):
            trace.append(alu(dest=1 + (i % 4), pc=0x1000 + 16 * i))
            trace.append(alu(dest=5 + (i % 4), pc=0x1004 + 16 * i))
            trace.append(fp_op(dest=33 + (i % 4), pc=0x1008 + 16 * i))
            trace.append(fp_op(dest=37 + (i % 4), pc=0x100c + 16 * i))
        stats = make_inorder().run(trace)
        assert stats.ipc > 2.5

    def test_memory_ops_compete_with_int(self):
        """No dedicated memory unit: loads + int ops share the 2 int pipes."""
        trace = []
        for i in range(100):
            trace.append(load(0x100, dest=16, pc=0x1000 + 12 * i))
            trace.append(alu(dest=1, pc=0x1004 + 12 * i))
            trace.append(alu(dest=2, pc=0x1008 + 12 * i))
        stats = make_inorder().run(trace)
        # 3 INT-class ops per iteration over 2 pipes: IPC caps at 2.
        assert stats.ipc <= 2.0


class TestLatencies:
    def latency_of(self, op, srcs_chain=True, n=50):
        trace = []
        for i in range(n):
            trace.append(DynInst(op, dest=9, srcs=(9,), pc=0x1000 + 8 * i))
        stats = make_inorder().run(trace)
        return stats.cycles / n

    def test_idiv_dominates(self):
        assert self.latency_of(OpClass.IDIV) >= 70

    def test_imul_pipeline(self):
        per_op = self.latency_of(OpClass.IMUL)
        assert 10 <= per_op <= 16

    def test_fdiv_in_order_is_17(self):
        per_op = self.latency_of(OpClass.FDIV)
        assert 15 <= per_op <= 20

    def test_chained_fp_ops_cost_four(self):
        per_op = self.latency_of(OpClass.FP)
        assert 3.5 <= per_op <= 6


class TestICacheEffects:
    def test_large_loop_body_misses_icache(self):
        # Body bigger than the 512B test I-cache: repeated I-misses.
        hierarchy = small_hierarchy()
        from repro.memory import CacheConfig, MemoryHierarchy
        from tests.helpers import inorder_config
        from repro.inorder import InOrderCore
        hierarchy = MemoryHierarchy(
            hierarchy.config,
            icache=CacheConfig(size=256, assoc=1, line_size=32))
        core = InOrderCore(inorder_config(), hierarchy)
        # 1KB of code looped: thrashes a 256B I-cache.
        trace = []
        for rep in range(10):
            for i in range(256):
                trace.append(alu(dest=1 + (i % 8), pc=0x1000 + 4 * i))
        core.run(trace)
        assert hierarchy.i_misses > 100

    def test_small_loop_fits(self):
        from repro.memory import CacheConfig, MemoryHierarchy
        from tests.helpers import inorder_config
        from repro.inorder import InOrderCore
        hierarchy = MemoryHierarchy(
            small_hierarchy().config,
            icache=CacheConfig(size=512, assoc=2, line_size=32))
        core = InOrderCore(inorder_config(), hierarchy)
        trace = []
        for rep in range(20):
            for i in range(16):
                trace.append(alu(dest=1 + (i % 8), pc=0x1000 + 4 * i))
        core.run(trace)
        assert hierarchy.i_misses <= 4


class TestStructuralStalls:
    def test_mshr_exhaustion_stalls_issue(self):
        hierarchy = small_hierarchy(mshr_count=1)
        core = make_inorder(hierarchy=hierarchy)
        trace = [load(0x40000 + 64 * i, dest=16 + (i % 6),
                      pc=0x1000 + 4 * i) for i in range(20)]
        stats = core.run(trace)
        assert hierarchy.stats.mshr_stalls > 0
        rich = make_inorder(hierarchy=small_hierarchy(mshr_count=8))
        rich_stats = rich.run(list(trace))
        assert rich_stats.cycles < stats.cycles

    def test_bank_conflicts_counted(self):
        hierarchy = small_hierarchy(data_banks=1)
        core = make_inorder(hierarchy=hierarchy)
        trace = []
        for i in range(50):
            trace.append(load(0x100, dest=16, pc=0x1000 + 8 * i))
            trace.append(load(0x120, dest=17, pc=0x1004 + 8 * i))
        core.run(trace)
        assert hierarchy.stats.bank_conflict_cycles > 0
