"""Property-based tests (hypothesis) on the substrate invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.branch import TwoBitCounterPredictor
from repro.memory import Cache, CacheConfig, MSHRFile, MemoryHierarchy
from repro.memory import HierarchyConfig
from repro.pipeline import StreamStack
from repro.isa import alu, load
from repro.sim import Simulator

addresses = st.integers(min_value=0, max_value=1 << 20)


class TestCacheProperties:
    @given(st.lists(addresses, min_size=1, max_size=200))
    def test_capacity_never_exceeded(self, addrs):
        cache = Cache(CacheConfig(size=256, assoc=2, line_size=32))
        for addr in addrs:
            cache.fill(addr)
        assert cache.resident_lines() <= 8

    @given(st.lists(addresses, min_size=1, max_size=200))
    def test_fill_then_probe_hits(self, addrs):
        cache = Cache(CacheConfig(size=1024, assoc=4, line_size=32))
        for addr in addrs:
            cache.fill(addr)
            assert cache.probe(addr)

    @given(st.lists(addresses, min_size=1, max_size=100))
    def test_invalidate_removes(self, addrs):
        cache = Cache(CacheConfig(size=512, assoc=2, line_size=32))
        for addr in addrs:
            cache.fill(addr)
        for addr in addrs:
            cache.invalidate(addr)
            assert not cache.contains(addr)

    @given(st.lists(st.tuples(addresses, st.booleans()),
                    min_size=1, max_size=200))
    def test_set_isolation(self, ops):
        """Accesses never evict lines from other sets."""
        config = CacheConfig(size=512, assoc=2, line_size=32)
        cache = Cache(config)
        resident_by_set = {}
        for addr, is_fill in ops:
            line = cache.line_addr(addr)
            set_index = line & (config.num_sets - 1)
            if is_fill:
                cache.fill(addr)
                resident_by_set.setdefault(set_index, set()).add(line)
            else:
                cache.probe(addr)
        for set_index in range(config.num_sets):
            lines = [line for s in [cache._sets[set_index]] for line in s]
            assert len(lines) <= config.assoc
            for line in lines:
                assert line & (config.num_sets - 1) == set_index


class TestMSHRProperties:
    @given(st.lists(st.integers(0, 30), min_size=1, max_size=100),
           st.integers(1, 8))
    def test_occupancy_bounded(self, lines, count):
        file = MSHRFile(count=count)
        for line in lines:
            if file.lookup(line) is not None:
                file.merge(line, False)
            elif not file.full:
                file.allocate(line, 10, False)
        assert file.occupancy() <= count
        assert file.high_water <= count

    @given(st.lists(st.tuples(st.integers(0, 20), st.booleans()),
                    min_size=1, max_size=80))
    def test_extended_lifetime_release_always_empties(self, events):
        file = MSHRFile(count=8, extended_lifetime=True)
        live = []
        for line, squash in events:
            if file.lookup(line) is None and not file.full:
                entry = file.allocate(line, 5, False)
                live.append((entry.mshr_id, squash))
        for mshr_id, squash in live:
            file.mark_filled(mshr_id)
            file.release(mshr_id, squashed=squash)
        assert file.occupancy() == 0


class TestHierarchyProperties:
    def make(self):
        return MemoryHierarchy(HierarchyConfig(
            l1=CacheConfig(size=256, assoc=2, line_size=32),
            l2=CacheConfig(size=2048, assoc=2, line_size=32),
            l1_to_l2_latency=12, l1_to_mem_latency=75, mshr_count=4))

    @given(st.lists(st.tuples(st.integers(0, 4095), st.booleans(),
                              st.integers(0, 5)),
                    min_size=1, max_size=150))
    @settings(max_examples=50)
    def test_ready_cycle_never_before_submission(self, ops):
        mem = self.make()
        cycle = 0
        for addr, is_write, gap in ops:
            cycle += gap
            result = mem.access(addr, is_write, cycle)
            if result is not None:
                assert result.ready_cycle >= cycle
                assert result.start_cycle >= cycle

    @given(st.lists(st.tuples(st.integers(0, 4095), st.booleans(),
                              st.integers(0, 30)),
                    min_size=1, max_size=150))
    @settings(max_examples=50)
    def test_inclusion_after_drain(self, ops):
        """After all fills land, every L1 line is also in L2."""
        mem = self.make()
        cycle = 0
        for addr, is_write, gap in ops:
            cycle += gap
            mem.access(addr, is_write, cycle)
        mem.drain()
        for cache_set in mem.l1._sets:
            for line in cache_set:
                assert mem.l2.contains(line << 5)

    @given(st.lists(st.integers(0, 2047), min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_second_access_after_drain_hits(self, addrs):
        mem = self.make()
        cycle = 0
        for addr in addrs:
            result = mem.access(addr, False, cycle)
            cycle += 200
            if result is not None and mem.l1.contains(addr):
                again = mem.access(addr, False, cycle)
                cycle += 200
                assert again is not None


class TestStreamStackProperties:
    @given(st.integers(2, 60), st.data())
    @settings(max_examples=50)
    def test_rewind_replays_identically(self, length, data):
        insts = [alu(dest=1, pc=4 * i) for i in range(length)]
        stack = StreamStack(insts)
        fetched = []
        points = []
        for _ in range(length):
            inst, point = stack.fetch()
            fetched.append(inst)
            points.append(point)
        index = data.draw(st.integers(0, length - 1))
        stack.rewind_to(points[index])
        replayed = []
        while True:
            item = stack.fetch()
            if item is None:
                break
            replayed.append(item[0])
        assert replayed == fetched[index:]

    @given(st.lists(st.integers(1, 5), min_size=0, max_size=6))
    def test_nested_handlers_preserve_app_order(self, handler_lengths):
        app = [alu(dest=1, pc=4 * i) for i in range(10)]
        stack = StreamStack(app)
        first, _ = stack.fetch()
        for depth, n in enumerate(handler_lengths):
            stack.push_handler(
                [alu(dest=2, pc=0x1000 * (depth + 1) + 4 * j)
                 for j in range(n)])
        rest = []
        while True:
            item = stack.fetch()
            if item is None:
                break
            rest.append(item[0])
        app_tail = [inst for inst in rest if inst.pc < 0x1000]
        assert [inst.pc for inst in app_tail] == [4 * i for i in range(1, 10)]


class TestPredictorProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=300))
    def test_counter_stays_in_range(self, outcomes):
        predictor = TwoBitCounterPredictor(entries=16)
        for taken in outcomes:
            predictor.predict(0x40)
            predictor.update(0x40, taken)
        assert all(0 <= counter <= 3 for counter in predictor._table)

    @given(st.integers(2, 40))
    def test_constant_branch_perfectly_predicted_eventually(self, repeats):
        predictor = TwoBitCounterPredictor(entries=16)
        predictor.update(0x40, True)
        predictor.update(0x40, True)
        for _ in range(repeats):
            assert predictor.predict(0x40) is True
            predictor.update(0x40, True)


class TestSimulatorProperties:
    @given(st.lists(st.lists(st.integers(0, 20), min_size=1, max_size=10),
                    min_size=1, max_size=8))
    @settings(max_examples=50)
    def test_time_is_monotonic_and_complete(self, schedules):
        sim = Simulator()
        observed = []

        def process(delays):
            for delay in delays:
                yield delay
                observed.append(sim.now)

        for delays in schedules:
            sim.spawn(process(delays))
        final = sim.run()
        assert observed == sorted(observed)
        assert final == max(observed) if observed else final == 0
        assert sim.live_processes == 0

    @given(st.integers(1, 8), st.integers(1, 5))
    def test_barrier_generations(self, parties, phases):
        sim = Simulator()
        barrier = sim.barrier(parties)

        def worker(seed):
            rng = random.Random(seed)
            for _ in range(phases):
                yield rng.randint(0, 9)
                yield barrier.wait()

        for p in range(parties):
            sim.spawn(worker(p))
        sim.run()
        assert barrier.generations == phases


class TestCoreInvariantProperties:
    @given(st.lists(st.tuples(st.integers(0, 63), st.booleans()),
                    min_size=1, max_size=60))
    @settings(max_examples=25, deadline=None)
    def test_app_instructions_preserved_under_informing(self, refs):
        """Any load/store mix commits the same app work with traps on."""
        from tests.helpers import make_ooo, trap_config
        trace = []
        for i, (slot, is_write) in enumerate(refs):
            addr = 0x40000 + slot * 64
            if is_write:
                from repro.isa import store
                trace.append(store(addr, pc=0x1000 + 4 * i))
            else:
                trace.append(load(addr, dest=2, pc=0x1000 + 4 * i))
        base = make_ooo().run(list(trace))
        informed = make_ooo(informing=trap_config(n=2)).run(list(trace))
        assert informed.app_instructions == base.app_instructions == len(refs)
        assert informed.cycles >= 1


# ---------------------------------------------------------------------------
# Seeded-random replacement and MSHR invariants (plain random.Random — these
# enumerate fixed seed ranges so every CI run replays the identical cases).
# ---------------------------------------------------------------------------

class _RefCache:
    """Reference replacement model mirroring Cache's documented semantics.

    Each set is a list of lines in replacement order (oldest first) plus a
    dirty map.  ``lru`` refreshes on probe hits and fills, ``fifo`` only on
    fills, ``random`` never reorders and picks its victim with the same
    LCG stream the Cache uses.
    """

    def __init__(self, num_sets, assoc, line_size, policy, seed=12345):
        self.num_sets = num_sets
        self.assoc = assoc
        self.line_shift = line_size.bit_length() - 1
        self.policy = policy
        self.order = [[] for _ in range(num_sets)]
        self.dirty = [dict() for _ in range(num_sets)]
        self.rand_state = seed or 1

    def _set(self, line):
        return line & (self.num_sets - 1)

    def probe(self, addr, is_write=False):
        line = addr >> self.line_shift
        s = self._set(line)
        if line not in self.dirty[s]:
            return False
        if self.policy == "lru":
            self.order[s].remove(line)
            self.order[s].append(line)
            self.dirty[s][line] = self.dirty[s][line] or is_write
        elif is_write:
            self.dirty[s][line] = True
        return True

    def fill(self, addr, dirty=False):
        line = addr >> self.line_shift
        s = self._set(line)
        if line in self.dirty[s]:
            if self.policy != "random":
                self.order[s].remove(line)
                self.order[s].append(line)
            self.dirty[s][line] = self.dirty[s][line] or dirty
            return
        if len(self.order[s]) >= self.assoc:
            if self.policy == "random":
                self.rand_state = (
                    self.rand_state * 1103515245 + 12345) & 0x7FFFFFFF
                index = self.rand_state % len(self.order[s])
            else:
                index = 0
            victim = self.order[s].pop(index)
            del self.dirty[s][victim]
        self.order[s].append(line)
        self.dirty[s][line] = dirty


def _replacement_case(seed, policy):
    """One randomized config + op string, checked after every operation."""
    rng = random.Random(seed)
    num_sets = rng.choice([1, 2, 4, 8])
    assoc = rng.randint(1, 8)
    line_size = 32
    config = CacheConfig(size=num_sets * assoc * line_size, assoc=assoc,
                         line_size=line_size)
    cache = Cache(config, policy=policy)
    model = _RefCache(num_sets, assoc, line_size, policy)
    # A pool a little larger than capacity forces steady evictions.
    pool = [rng.randrange(0, 4 * num_sets * assoc) * line_size
            for _ in range(3 * assoc * num_sets + 4)]
    for _ in range(rng.randint(20, 120)):
        addr = rng.choice(pool)
        is_write = rng.random() < 0.3
        if rng.random() < 0.5:
            assert cache.probe(addr, is_write=is_write) == \
                model.probe(addr, is_write=is_write)
        else:
            cache.fill(addr, dirty=is_write)
            model.fill(addr, dirty=is_write)
        assert cache.resident_lines() <= num_sets * assoc
        for s in range(num_sets):
            assert list(cache._sets[s]) == model.order[s], \
                f"seed {seed}: set {s} order diverged"
            assert cache._sets[s] == model.dirty[s], \
                f"seed {seed}: set {s} dirty bits diverged"


class TestReplacementReferenceModel:
    """occupancy <= ways and exact resident-set/order/dirty agreement with
    the reference model, over randomized configs and access strings."""

    def test_lru_matches_reference(self):
        for seed in range(100):
            _replacement_case(seed, "lru")

    def test_fifo_matches_reference(self):
        for seed in range(100):
            _replacement_case(1000 + seed, "fifo")

    def test_random_matches_reference(self):
        for seed in range(100):
            _replacement_case(2000 + seed, "random")


class TestMSHRSeededInvariants:
    """Randomized MSHR lifetime sequences against the documented contract."""

    def test_merge_release_invariants(self):
        for seed in range(200):
            rng = random.Random(3000 + seed)
            count = rng.randint(1, 8)
            extended = rng.random() < 0.5
            file = MSHRFile(count=count, extended_lifetime=extended)
            pinned = []          # allocated ids awaiting release (extended)
            merged_total = 0
            for step in range(rng.randint(10, 60)):
                line = rng.randrange(0, 12)
                entry = file.lookup(line)
                if entry is not None:
                    before = entry.merged
                    file.merge(line, rng.random() < 0.5)
                    merged_total += 1
                    assert entry.merged == before + 1
                elif not file.full:
                    entry = file.allocate(line, step + 10,
                                          rng.random() < 0.5)
                    assert entry is not None
                    assert entry.pinned == extended
                    assert file.lookup(line) is entry
                    if extended:
                        pinned.append(entry.mshr_id)
                elif rng.random() < 0.5 and pinned:
                    # Full file: drain one pinned entry to make room.
                    mshr_id = pinned.pop(rng.randrange(len(pinned)))
                    file.mark_filled(mshr_id)
                    file.release(mshr_id, squashed=rng.random() < 0.5)
                # Core invariants after every operation:
                assert file.occupancy() <= count
                assert file.high_water <= count
                live_lines = [e.line_addr for e in file.entries()
                              if not e.filled]
                assert len(live_lines) == len(set(live_lines)), \
                    f"seed {seed}: duplicate in-flight line"
                for e in file.entries():
                    if not e.filled:
                        assert file.lookup(e.line_addr) is e
            # Drain: every entry releases; the file must come back empty.
            if extended:
                for mshr_id in pinned:
                    file.mark_filled(mshr_id)
                    file.release(mshr_id, squashed=False)
            else:
                for e in file.entries():
                    file.mark_filled(e.mshr_id)
            assert file.occupancy() == 0
            assert file.lookup(0) is None
