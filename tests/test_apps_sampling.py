"""Unit tests for the sampled profiler (§4.2.2's overhead remedy)."""

import pytest

from repro.apps import MissProfiler, SamplingController, SamplingProfiler
from repro.core.engine import InformingEngine
from repro.core.mechanisms import InformingConfig, Mechanism
from repro.core.handlers import GenericHandler
from repro.isa import OpClass, load
from tests.helpers import make_ooo


def miss_stream(n, pc=0x1000):
    return [load(0x400000 + 64 * i, dest=2, pc=pc + 4 * (i % 4))
            for i in range(n)]


class TestSamplingController:
    def engine(self):
        return InformingEngine(InformingConfig(
            mechanism=Mechanism.TRAP, handler=GenericHandler(1)))

    def test_duty_cycle_toggles_engine(self):
        controller = SamplingController(period=10, duty=0.5)
        engine = self.engine()
        states = []
        for inst in controller.sampled_stream(miss_stream(40), engine):
            if inst.op is not OpClass.MHAR_SET:
                states.append(engine.enabled)
        on = sum(states)
        assert 0.35 < on / len(states) < 0.65
        assert controller.toggles > 0

    def test_toggle_instructions_injected(self):
        controller = SamplingController(period=10, duty=0.5)
        out = list(controller.sampled_stream(miss_stream(40), self.engine()))
        toggles = [i for i in out if i.op is OpClass.MHAR_SET]
        assert len(toggles) == controller.toggles
        assert len(out) == 40 + len(toggles)

    def test_full_duty_never_disables(self):
        controller = SamplingController(period=16, duty=1.0)
        engine = self.engine()
        for _ in controller.sampled_stream(miss_stream(64), engine):
            assert engine.enabled

    def test_scale_factor(self):
        assert SamplingController(period=100, duty=0.25).scale_factor == 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingController(period=1)
        with pytest.raises(ValueError):
            SamplingController(duty=0.0)
        with pytest.raises(ValueError):
            SamplingController(duty=1.5)


class TestSamplingProfiler:
    def run_profiler(self, duty, n=6000):
        sampler = SamplingProfiler(period=512, duty=duty)
        core = make_ooo(informing=sampler.informing_config())
        sampler.attach(core)
        stats = core.run(sampler.instrument(iter(miss_stream(n))))
        return sampler, stats

    def test_estimate_tracks_truth(self):
        n = 6000  # every load misses (fresh lines)
        sampler, _ = self.run_profiler(duty=0.25, n=n)
        estimate = sampler.estimated_total_misses
        assert estimate == pytest.approx(n, rel=0.2)

    def test_sampling_reduces_handler_work(self):
        full, full_stats = self.run_profiler(duty=1.0)
        quarter, quarter_stats = self.run_profiler(duty=0.25)
        assert (quarter.profiler.profile.total_misses
                < full.profiler.profile.total_misses * 0.5)
        assert (quarter_stats.handler_instructions
                < full_stats.handler_instructions * 0.5)

    def test_per_pc_estimates(self):
        sampler, _ = self.run_profiler(duty=0.5, n=4000)
        # Four static pcs share the misses about equally.
        estimates = [sampler.estimated_misses(0x1000 + 4 * k)
                     for k in range(4)]
        assert sum(estimates) == pytest.approx(4000, rel=0.25)

    def test_attach_required(self):
        sampler = SamplingProfiler()
        with pytest.raises(RuntimeError):
            list(sampler.instrument(iter([])))
