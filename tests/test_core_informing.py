"""Unit tests for the informing-operations core package."""

import pytest

from repro.core import (
    CallbackHandler,
    GenericHandler,
    InformingConfig,
    InformingEngine,
    Mechanism,
    SINGLE_HANDLER_BASE_PC,
    TrapStyle,
    add_cc_checks,
    add_mhar_sets,
)
from repro.isa import OpClass, alu, branch, load, prefetch, store
from repro.isa.registers import HANDLER_REG_BASE


class TestInformingConfig:
    def test_none_baseline(self):
        config = InformingConfig()
        assert not config.active
        assert not config.adds_per_reference_instruction

    def test_handler_requires_mechanism(self):
        with pytest.raises(ValueError):
            InformingConfig(handler=GenericHandler(1))

    def test_cc_requires_handler(self):
        with pytest.raises(ValueError):
            InformingConfig(mechanism=Mechanism.CONDITION_CODE)

    def test_trap_with_null_handler_is_inactive(self):
        config = InformingConfig(mechanism=Mechanism.TRAP)
        assert not config.active  # MHAR == 0

    def test_per_reference_instruction_modes(self):
        single = InformingConfig(mechanism=Mechanism.TRAP,
                                 handler=GenericHandler(10))
        unique = InformingConfig(mechanism=Mechanism.TRAP,
                                 handler=GenericHandler(10, unique=True),
                                 unique_handlers=True)
        cc = InformingConfig(mechanism=Mechanism.CONDITION_CODE,
                             handler=GenericHandler(10, unique=True))
        assert not single.adds_per_reference_instruction
        assert unique.adds_per_reference_instruction
        assert cc.adds_per_reference_instruction


class TestGenericHandler:
    def test_length_and_return_jump(self):
        handler = GenericHandler(10)
        body = handler.instructions(load(0x100, dest=1, pc=0x40))
        assert len(body) == 11
        assert body[-1].op is OpClass.MHRR_JUMP
        assert all(inst.handler_code for inst in body)
        assert all(not inst.informing for inst in body[:-1])

    def test_single_handler_chains_across_invocations(self):
        handler = GenericHandler(3, unique=False)
        body = handler.instructions(load(0x100, dest=1, pc=0x40))
        assert body[0].srcs == (HANDLER_REG_BASE,)  # reads previous value
        assert body[1].srcs == (HANDLER_REG_BASE,)
        assert body[0].dest == HANDLER_REG_BASE

    def test_unique_handler_starts_fresh_chain(self):
        handler = GenericHandler(3, unique=True)
        body = handler.instructions(load(0x100, dest=1, pc=0x40))
        assert body[0].srcs == ()
        assert body[1].srcs == (HANDLER_REG_BASE,)

    def test_unchained_ablation(self):
        handler = GenericHandler(5, unique=True, chained=False)
        body = handler.instructions(load(0x100, dest=1, pc=0x40))
        assert all(inst.srcs == () for inst in body[:-1])

    def test_single_handler_pc_is_fixed(self):
        handler = GenericHandler(2)
        a = handler.instructions(load(0x100, dest=1, pc=0x40))
        b = handler.instructions(load(0x200, dest=1, pc=0x80))
        assert a[0].pc == b[0].pc == SINGLE_HANDLER_BASE_PC

    def test_unique_handler_pcs_differ_per_reference(self):
        handler = GenericHandler(2, unique=True)
        a = handler.instructions(load(0x100, dest=1, pc=0x40))
        b = handler.instructions(load(0x200, dest=1, pc=0x80))
        assert a[0].pc != b[0].pc

    def test_unique_handler_pc_is_deterministic(self):
        handler = GenericHandler(2, unique=True)
        a = handler.instructions(load(0x100, dest=1, pc=0x40))
        b = handler.instructions(load(0x300, dest=2, pc=0x40))
        assert a[0].pc == b[0].pc

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            GenericHandler(0)


class TestCallbackHandler:
    def test_callback_observes_and_uses_cost_model(self):
        seen = []
        handler = CallbackHandler(lambda ref: seen.append(ref.addr) or None,
                                  cost_model=GenericHandler(2))
        body = handler.instructions(load(0x123, dest=1, pc=0x40))
        assert seen == [0x123]
        assert len(body) == 3
        assert handler.invocations == 1
        assert handler.length == 2

    def test_callback_custom_body_gets_return_jump(self):
        handler = CallbackHandler(lambda ref: [alu(dest=5, pc=0x500)])
        body = handler.instructions(load(0x100, dest=1, pc=0))
        assert body[-1].op is OpClass.MHRR_JUMP
        assert len(body) == 2

    def test_callback_none_without_cost_model_is_bare_return(self):
        handler = CallbackHandler(lambda ref: None)
        body = handler.instructions(load(0x100, dest=1, pc=0))
        assert len(body) == 1
        assert body[0].op is OpClass.MHRR_JUMP

    def test_no_fixed_length_without_cost_model(self):
        handler = CallbackHandler(lambda ref: None)
        with pytest.raises(AttributeError):
            handler.length


class TestInformingEngine:
    def make(self, **kw):
        config = InformingConfig(mechanism=Mechanism.TRAP,
                                 handler=GenericHandler(1), **kw)
        return InformingEngine(config)

    def test_miss_invokes_handler(self):
        engine = self.make()
        body = engine.on_miss(load(0x100, dest=1, pc=0x40))
        assert body is not None
        assert engine.invocations == 1
        assert engine.injected_instructions == len(body)

    def test_non_informing_reference_ignored(self):
        engine = self.make()
        assert engine.on_miss(load(0x100, dest=1, pc=0, informing=False)) is None
        assert engine.invocations == 0

    def test_handler_code_never_retraps(self):
        engine = self.make()
        inner = load(0x200, dest=1, pc=0x500)
        inner.handler_code = True
        assert engine.on_miss(inner) is None

    def test_mhar_disable_enable(self):
        engine = self.make()
        engine.disable()
        assert engine.on_miss(load(0x100, dest=1, pc=0)) is None
        engine.enable()
        assert engine.on_miss(load(0x100, dest=1, pc=0)) is not None

    def test_observer_hook(self):
        seen = []
        config = InformingConfig(mechanism=Mechanism.TRAP,
                                 handler=GenericHandler(1))
        engine = InformingEngine(config, observer=lambda ref: seen.append(ref.pc))
        engine.on_miss(load(0x100, dest=1, pc=0x44))
        assert seen == [0x44]

    def test_inactive_config(self):
        engine = InformingEngine(InformingConfig())
        assert engine.on_miss(load(0x100, dest=1, pc=0)) is None


class TestInstrumentation:
    def trace(self):
        return [
            alu(dest=1, pc=0),
            load(0x100, dest=2, pc=4),
            store(0x200, srcs=(2,), pc=8),
            prefetch(0x300, pc=12),
            branch(True, pc=16),
            load(0x400, dest=3, pc=20, informing=False),
        ]

    def test_cc_checks_follow_each_informing_ref(self):
        out = list(add_cc_checks(self.trace()))
        ops = [inst.op for inst in out]
        assert ops == [
            OpClass.IALU,
            OpClass.LOAD, OpClass.BLMISS,
            OpClass.STORE, OpClass.BLMISS,
            OpClass.PREFETCH,
            OpClass.BRANCH,
            OpClass.LOAD,  # non-informing: no check
        ]
        # Each check's pc derives from its reference.
        assert out[2].pc == 5 and out[4].pc == 9

    def test_mhar_sets_precede_each_informing_ref(self):
        out = list(add_mhar_sets(self.trace()))
        ops = [inst.op for inst in out]
        assert ops == [
            OpClass.IALU,
            OpClass.MHAR_SET, OpClass.LOAD,
            OpClass.MHAR_SET, OpClass.STORE,
            OpClass.PREFETCH,
            OpClass.BRANCH,
            OpClass.LOAD,
        ]

    def test_handler_code_not_instrumented(self):
        inner = load(0x200, dest=1, pc=0x500)
        inner.handler_code = True
        out = list(add_cc_checks([inner]))
        assert len(out) == 1

    def test_rewriters_are_lazy(self):
        def infinite():
            while True:
                yield load(0x100, dest=1, pc=4)

        gen = add_mhar_sets(infinite())
        first = next(gen)
        assert first.op is OpClass.MHAR_SET
