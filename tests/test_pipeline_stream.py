"""Unit tests for the replayable fetch-stream stack."""

import pytest

from repro.isa import alu, load, mhrr_jump
from repro.pipeline import FetchPoint, StreamStack, StreamError


def insts(n, pc_base=0):
    return [alu(dest=1, pc=pc_base + 4 * i) for i in range(n)]


class TestLinearFetch:
    def test_fetch_in_order(self):
        stack = StreamStack(insts(3))
        fetched = []
        while True:
            item = stack.fetch()
            if item is None:
                break
            fetched.append(item)
        assert [inst.pc for inst, _ in fetched] == [0, 4, 8]
        assert [point.index for _, point in fetched] == [0, 1, 2]
        assert all(point.frame_serial == 0 for _, point in fetched)

    def test_exhausted_stream_returns_none_repeatedly(self):
        stack = StreamStack(insts(1))
        stack.fetch()
        assert stack.fetch() is None
        assert stack.fetch() is None

    def test_generator_source(self):
        stack = StreamStack(alu(dest=1, pc=i) for i in range(2))
        assert stack.fetch() is not None
        assert stack.fetch() is not None
        assert stack.fetch() is None


class TestHandlerInjection:
    def test_handler_frame_interposes(self):
        stack = StreamStack(insts(4))
        stack.fetch()  # pc 0
        stack.push_handler([alu(dest=2, pc=100), mhrr_jump(pc=104)])
        pcs = []
        while True:
            item = stack.fetch()
            if item is None:
                break
            pcs.append(item[0].pc)
        assert pcs == [100, 104, 4, 8, 12]

    def test_nested_handlers(self):
        stack = StreamStack(insts(2))
        stack.fetch()
        stack.push_handler([alu(dest=2, pc=100)])
        stack.fetch()  # pc 100
        stack.push_handler([alu(dest=3, pc=200)])
        pcs = [stack.fetch()[0].pc, stack.fetch()[0].pc]
        assert pcs == [200, 4]
        assert stack.depth == 1

    def test_depth_tracks_frames(self):
        stack = StreamStack(insts(2))
        assert stack.depth == 1
        stack.push_handler([alu(dest=2, pc=100)])
        assert stack.depth == 2


class TestRewind:
    def test_rewind_after_replays(self):
        stack = StreamStack(insts(4))
        _, p0 = stack.fetch()
        stack.fetch()
        stack.fetch()
        stack.rewind_after(p0)
        inst, point = stack.fetch()
        assert inst.pc == 4
        assert point.index == 1

    def test_rewind_to_refetches_same_instruction(self):
        stack = StreamStack(insts(3))
        first, p0 = stack.fetch()
        stack.fetch()
        stack.rewind_to(p0)
        again, _ = stack.fetch()
        assert again is first

    def test_rewind_pops_handler_frames(self):
        stack = StreamStack(insts(4))
        _, p0 = stack.fetch()
        stack.fetch()
        stack.push_handler([alu(dest=2, pc=100)])
        stack.fetch()
        stack.rewind_after(p0)  # squashes the handler too
        assert stack.depth == 1
        assert stack.fetch()[0].pc == 4

    def test_trap_replay_scenario(self):
        """An informing miss squashes younger insts, runs a handler, resumes."""
        trace = [load(0x100, dest=1, pc=0), alu(dest=2, pc=4), alu(dest=3, pc=8)]
        stack = StreamStack(trace)
        _, miss_point = stack.fetch()      # the load
        stack.fetch()                      # pc 4, will be squashed
        stack.fetch()                      # pc 8, will be squashed
        stack.rewind_after(miss_point)     # trap detected at execute
        stack.push_handler([alu(dest=9, pc=400), mhrr_jump(pc=404)])
        pcs = []
        while True:
            item = stack.fetch()
            if item is None:
                break
            pcs.append(item[0].pc)
        assert pcs == [400, 404, 4, 8]

    def test_rewind_to_dead_frame_raises(self):
        stack = StreamStack(insts(2))
        stack.fetch()
        stack.push_handler([alu(dest=2, pc=100)])
        _, hpoint = stack.fetch()
        stack.fetch()  # exhausts handler; next app fetch pops the frame
        stack.fetch()
        with pytest.raises(StreamError):
            stack.rewind_after(hpoint)

    def test_rewind_past_fetch_point_raises(self):
        stack = StreamStack(insts(2))
        _, p0 = stack.fetch()
        with pytest.raises(StreamError):
            stack.rewind_after(FetchPoint(p0.frame_serial, 5))


class TestCommitTrimming:
    def test_commit_bounds_buffering(self):
        stack = StreamStack(insts(100))
        points = [stack.fetch()[1] for _ in range(100)]
        assert stack.buffered == 100
        for point in points[:50]:
            stack.committed(point)
        assert stack.buffered == 50

    def test_rewind_below_commit_raises(self):
        stack = StreamStack(insts(4))
        _, p0 = stack.fetch()
        _, p1 = stack.fetch()
        stack.committed(p1)
        with pytest.raises(StreamError):
            stack.rewind_to(p0)

    def test_commit_of_popped_handler_frame_is_ignored(self):
        stack = StreamStack(insts(2))
        stack.fetch()
        stack.push_handler([alu(dest=2, pc=100)])
        _, hpoint = stack.fetch()
        stack.fetch()  # pops the handler frame
        stack.committed(hpoint)  # no error
