"""Unit tests for the Jouppi stream-buffer baseline [Jou90]."""

import pytest

from repro.memory import CacheConfig, HierarchyConfig, MemoryHierarchy
from repro.memory.cache import Cache


def make(buffers=2, **overrides):
    params = dict(
        l1=CacheConfig(size=512, assoc=2, line_size=32),
        l2=CacheConfig(size=16 * 1024, assoc=2, line_size=32),
        l1_to_l2_latency=12,
        l1_to_mem_latency=75,
        mshr_count=8,
    )
    params.update(overrides)
    return MemoryHierarchy(HierarchyConfig(**params),
                           stream_buffers=buffers)


class TestStreamBuffers:
    def test_sequential_stream_hits_buffer(self):
        mem = make()
        cycle = 0
        hits = 0
        for i in range(40):
            result = mem.access(0x10000 + 32 * i, False, cycle)
            cycle += 200  # let each fill and buffer refill complete
        assert mem.stream_buffer_hits > 30
        # Only the first (allocating) misses invoked the informing path.
        assert mem.stats.l1_misses < 5

    def test_buffer_hit_is_fast(self):
        mem = make()
        mem.access(0x10000, False, 0)        # miss, allocates a buffer
        result = mem.access(0x10020, False, 500)  # next line: buffer hit
        assert not result.l1_miss
        assert result.ready_cycle <= 500 + 4

    def test_random_accesses_get_no_benefit(self):
        mem = make()
        cycle = 0
        addrs = [0x10000, 0x50000, 0x30000, 0x70000, 0x20000, 0x90000]
        for addr in addrs:
            mem.access(addr, False, cycle)
            cycle += 200
        assert mem.stream_buffer_hits == 0

    def test_buffers_track_multiple_streams(self):
        mem = make(buffers=2)
        cycle = 0
        for i in range(20):
            mem.access(0x10000 + 32 * i, False, cycle)
            cycle += 150
            mem.access(0x80000 + 32 * i, False, cycle)
            cycle += 150
        assert mem.stream_buffer_hits > 25

    def test_too_many_streams_thrash_buffers(self):
        mem = make(buffers=1)
        cycle = 0
        for i in range(15):
            for stream in range(3):  # 3 interleaved streams, 1 buffer
                mem.access(0x10000 + 0x10000 * stream + 32 * i, False, cycle)
                cycle += 150
        assert mem.stream_buffer_hits < 10

    def test_buffer_not_ready_is_still_a_miss(self):
        mem = make()
        mem.access(0x10000, False, 0)
        # The buffer's prefetch of line +1 has not returned at cycle 1.
        result = mem.access(0x10020, False, 1)
        assert result.l1_miss

    def test_zero_buffers_is_default_behaviour(self):
        mem = MemoryHierarchy(HierarchyConfig(
            l1=CacheConfig(size=512, assoc=2, line_size=32),
            l2=CacheConfig(size=16 * 1024, assoc=2, line_size=32)))
        for i in range(10):
            mem.access(0x10000 + 32 * i, False, 200 * i)
        assert mem.stream_buffer_hits == 0


class TestReplacementPolicies:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            Cache(CacheConfig(size=256, assoc=2, line_size=32),
                  policy="clock")

    def test_fifo_ignores_reuse(self):
        config = CacheConfig(size=64, assoc=2, line_size=32)  # one set
        fifo = Cache(config, policy="fifo")
        fifo.fill(0x0)
        fifo.fill(0x40)
        fifo.probe(0x0)          # reuse would save 0x0 under LRU...
        victim = fifo.fill(0x80)
        assert victim.line_addr == 0  # ...but FIFO evicts the oldest fill

    def test_random_is_deterministic_per_seed(self):
        config = CacheConfig(size=64, assoc=2, line_size=32)

        def victims(seed):
            cache = Cache(config, policy="random", seed=seed)
            out = []
            for i in range(10):
                victim = cache.fill(0x40 * i)
                if victim:
                    out.append(victim.line_addr)
            return out

        assert victims(1) == victims(1)

    def test_lru_vs_fifo_differ_on_reuse_pattern(self):
        config = CacheConfig(size=64, assoc=2, line_size=32)
        lru = Cache(config, policy="lru")
        fifo = Cache(config, policy="fifo")
        # A B touch-A C : LRU keeps A, FIFO evicts A.
        for cache in (lru, fifo):
            cache.fill(0x0)
            cache.fill(0x40)
            cache.probe(0x0)
            cache.fill(0x80)
        assert lru.contains(0x0)
        assert not fifo.contains(0x0)
