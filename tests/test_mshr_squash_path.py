"""Section 3.3's extended-MSHR-lifetime squash path: a squashed
speculative informing load must leave the L1 line invalid while the line
stays resident in L2 ("effectively prefetched into the second-level
cache")."""

import random

import pytest

from tests.helpers import make_inorder, make_ooo, small_hierarchy, trap_config
from repro.core import TrapStyle
from repro.isa.instructions import alu, load
from repro.memory import CacheConfig
from repro.sanitize import Sanitizer


def big_l2_hierarchy():
    """Extended-lifetime hierarchy with an L2 that outlives the working
    set, so "resident in L2" is never confounded by capacity evictions."""
    return small_hierarchy(extended=True,
                           l2=CacheConfig(size=65536, assoc=4,
                                          line_size=32))


class ReleaseSpy:
    """Record every extended-lifetime release with the cache state the
    instant it completes."""

    def __init__(self, hierarchy):
        self.hierarchy = hierarchy
        self.records = []
        self._orig = hierarchy.release_mshr

        def spying_release(mshr_id, squashed):
            entry = hierarchy.mshrs.get(mshr_id)
            filled = entry.filled if entry is not None else None
            byte_addr = (hierarchy._line_to_byte(entry.line_addr)
                         if entry is not None else None)
            l1_before = (hierarchy.l1.contains(byte_addr)
                         if byte_addr is not None else None)
            self._orig(mshr_id, squashed)
            if entry is not None:
                self.records.append({
                    "squashed": squashed,
                    "filled": filled,
                    "byte_addr": byte_addr,
                    "l1_before": l1_before,
                    "l1_after": hierarchy.l1.contains(byte_addr),
                    "l2_after": hierarchy.l2.contains(byte_addr),
                })

        hierarchy.release_mshr = spying_release

    def squashed(self, filled):
        return [r for r in self.records
                if r["squashed"] and r["filled"] == filled]


class TestHierarchySquashSemantics:
    """Drive the hierarchy directly: both squash orderings, exactly."""

    def test_squash_after_fill_invalidates_l1_keeps_l2(self):
        hierarchy = big_l2_hierarchy()
        result = hierarchy.access(0x2000, False, cycle=1)
        assert result.l1_miss and result.mshr_id is not None
        # Let the fill land: the speculative load installed its line.
        hierarchy.access(0x4000, False, cycle=result.ready_cycle + 1)
        assert hierarchy.l1.contains(0x2000)
        assert hierarchy.l2.contains(0x2000)

        hierarchy.release_mshr(result.mshr_id, squashed=True)
        assert not hierarchy.l1.contains(0x2000), (
            "squash must undo the speculative L1 install")
        assert hierarchy.l2.contains(0x2000), (
            "the line stays in L2: effectively prefetched")
        assert hierarchy.stats.squash_invalidations == 1

    def test_squash_before_fill_suppresses_l1_install(self):
        hierarchy = big_l2_hierarchy()
        result = hierarchy.access(0x2000, False, cycle=1)
        hierarchy.release_mshr(result.mshr_id, squashed=True)

        hierarchy.drain()  # the in-flight data still arrives
        assert not hierarchy.l1.contains(0x2000), (
            "a fill for a squashed MSHR must not install into L1")
        assert hierarchy.l2.contains(0x2000)
        # Nothing was in L1 to invalidate: not a squash invalidation.
        assert hierarchy.stats.squash_invalidations == 0

    def test_graduation_release_keeps_l1(self):
        hierarchy = big_l2_hierarchy()
        result = hierarchy.access(0x2000, False, cycle=1)
        hierarchy.access(0x4000, False, cycle=result.ready_cycle + 1)
        hierarchy.release_mshr(result.mshr_id, squashed=False)
        assert hierarchy.l1.contains(0x2000)
        assert hierarchy.stats.squash_invalidations == 0


def informing_stream(n, seed, span_bits=14):
    rng = random.Random(seed)
    insts = []
    pc = 0x1000
    for _ in range(n):
        if rng.random() < 0.5:
            insts.append(load(rng.randrange(0, 1 << span_bits) & ~3,
                              dest=2, srcs=(1,), pc=pc, informing=True))
        else:
            insts.append(alu(dest=3, srcs=(2,), pc=pc))
        pc += 4
    return insts


CORES = [
    # The in-order replay trap squashes 2 cycles after issue: squashed
    # entries are still in flight (squash-before-fill path).
    pytest.param(make_inorder, TrapStyle.BRANCH_LIKE, id="inorder"),
    # Exception-like traps fire at graduation, long after younger loads
    # may have filled: the squash-after-fill path.
    pytest.param(make_ooo, TrapStyle.EXCEPTION_LIKE, id="ooo"),
]


class TestCoreSquashPath:
    @pytest.mark.parametrize("maker,style", CORES)
    def test_squashed_informing_loads_leave_l1_invalid(self, maker, style):
        hierarchy = big_l2_hierarchy()
        core = maker(informing=trap_config(style=style),
                     hierarchy=hierarchy)
        Sanitizer(every=16).attach(core)  # invariants live during the run
        spy = ReleaseSpy(hierarchy)
        core.run(informing_stream(6000, seed=5))

        squashed = [r for r in spy.records if r["squashed"]]
        assert squashed, "the run produced no squashed speculative loads"
        for record in squashed:
            assert not record["l1_after"], (
                f"squashed line {record['byte_addr']:#x} still in L1")
        # Squash-after-fill: the line must already be sitting in L2.
        for record in spy.squashed(filled=True):
            assert record["l2_after"], (
                f"squashed line {record['byte_addr']:#x} lost from L2")
        # Squash-in-flight: the data is still on its way; once it lands
        # it goes to L2 only (checked after drain below).
        hierarchy.drain()
        for record in spy.squashed(filled=False):
            assert hierarchy.l2.contains(record["byte_addr"])

    def test_ooo_exercises_the_squash_after_fill_path(self):
        """The OoO/exception-like combination must actually hit the
        filled-entry squash (the case Section 3.3 legislates), and each
        one must be counted as a squash invalidation."""
        hierarchy = big_l2_hierarchy()
        core = make_ooo(informing=trap_config(
            style=TrapStyle.EXCEPTION_LIKE), hierarchy=hierarchy)
        spy = ReleaseSpy(hierarchy)
        core.run(informing_stream(6000, seed=5))

        filled_squashes = spy.squashed(filled=True)
        assert filled_squashes, (
            "no squash-after-fill events: the test lost its subject")
        # Each squash whose line was still resident gets invalidated and
        # counted; lines a later fill already evicted need no action.
        resident = [r for r in filled_squashes if r["l1_before"]]
        assert resident
        assert hierarchy.stats.squash_invalidations == len(resident)

    def test_inorder_exercises_the_in_flight_squash_path(self):
        """The in-order replay trap squashes entries before their data
        returns; the later fill must leave L2 (and only L2) populated."""
        hierarchy = big_l2_hierarchy()
        core = make_inorder(informing=trap_config(), hierarchy=hierarchy)
        spy = ReleaseSpy(hierarchy)
        core.run(informing_stream(6000, seed=5))

        in_flight_squashes = spy.squashed(filled=False)
        assert in_flight_squashes, (
            "no in-flight squashes: the replay trap never fired")
        hierarchy.drain()
        for record in in_flight_squashes:
            assert hierarchy.l2.contains(record["byte_addr"])
