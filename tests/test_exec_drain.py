"""Graceful shutdown: request_drain, DRAINED telemetry, signals,
manifest status."""

import json
import signal
import threading
import time

import pytest

from repro.exec import (
    DRAINED,
    CollectingSink,
    ExecOptions,
    JobRunner,
    SimJob,
)


def echo_execute(job):
    return {"label": job.label, "seed": job.seed}


def slow_execute(job):
    time.sleep(job.seed)
    return {"slept": job.seed}


def make_job(name="a", seed=0):
    return SimJob.bar(benchmark=name, machine="m", label="L",
                      instructions=1, warmup=0, seed=seed)


class TestSerialDrain:
    def test_drain_mid_grid_keeps_finished_work(self):
        runner = JobRunner(ExecOptions(jobs=1, cache=False))

        def draining_execute(job):
            if job.benchmark == "b":
                runner.request_drain()
            return {"label": job.label, "benchmark": job.benchmark}

        runner.execute = draining_execute
        collector = CollectingSink()
        runner.extra_sinks.append(collector)
        jobs = [make_job(name) for name in "abcd"]
        results = runner.run(jobs)

        # a and b finished (the drain request lands while b is in
        # flight, and in-flight work completes); c and d were given up.
        assert results[0] is not None and results[1] is not None
        assert results[2] is None and results[3] is None
        drained = [e for e in collector.events if e.event == DRAINED]
        assert len(drained) == 2
        assert runner.stats.drained == 2
        assert runner.stats.as_dict()["drained"] == 2

    def test_drain_is_sticky_across_grids(self):
        runner = JobRunner(ExecOptions(jobs=1, cache=False),
                           execute=echo_execute)
        runner.request_drain()
        results = runner.run([make_job("a"), make_job("b")])
        assert results == [None, None]
        assert runner.draining

    def test_drained_run_writes_manifest_with_status(self, tmp_path):
        runner = JobRunner(ExecOptions(jobs=1, cache=False,
                                       manifest_dir=str(tmp_path),
                                       run_meta={"experiment": "t"}))

        def draining_execute(job):
            runner.request_drain()
            return {"label": job.label}

        runner.execute = draining_execute
        runner.run([make_job("a"), make_job("b")])
        assert runner.last_manifest is not None
        with open(runner.last_manifest) as fh:
            manifest = json.load(fh)
        assert manifest["status"] == "drained"
        states = {c["label"]: c["status"] for c in manifest["cells"]}
        assert sorted(states.values()) == ["drained", "ok"]


class TestParallelDrain:
    def test_drain_keeps_completed_futures(self):
        runner = JobRunner(ExecOptions(jobs=2, cache=False, retries=0),
                           execute=slow_execute)
        collector = CollectingSink()
        runner.extra_sinks.append(collector)
        # Far more jobs than the 2-worker pool can buffer (workers plus
        # its small prefetch queue), so a drain arriving while the first
        # job is still collecting must leave a tail to cancel.
        jobs = [SimJob.bar(benchmark=f"j{i}", machine="m", label="L",
                           instructions=1, warmup=0, seed=0.15)
                for i in range(12)]
        timer = threading.Timer(0.02, runner.request_drain)
        timer.start()
        try:
            results = runner.run(jobs)
        finally:
            timer.cancel()
        finished = [r for r in results if r is not None]
        drained = [e for e in collector.events if e.event == DRAINED]
        # In-flight work completed and was recorded; the queued tail was
        # given up with a drained event per job.
        assert finished and drained
        assert len(finished) + len(drained) == len(jobs)
        assert all(r == {"slept": 0.15} for r in finished)


class TestSignals:
    def test_sigterm_requests_drain(self):
        runner = JobRunner(ExecOptions(jobs=1, cache=False,
                                       install_signal_handlers=True))

        def signalling_execute(job):
            if job.benchmark == "a":
                signal.raise_signal(signal.SIGTERM)
            return {"label": job.label}

        runner.execute = signalling_execute
        results = runner.run([make_job(n) for n in "abc"])
        assert results[0] is not None
        assert results[1] is None and results[2] is None
        assert runner.draining

    def test_handlers_restored_after_run(self):
        before = signal.getsignal(signal.SIGTERM)
        runner = JobRunner(ExecOptions(jobs=1, cache=False,
                                       install_signal_handlers=True),
                           execute=echo_execute)
        runner.run([make_job("a")])
        assert signal.getsignal(signal.SIGTERM) is before

    def test_handlers_untouched_by_default(self):
        before = signal.getsignal(signal.SIGTERM)

        def asserting_execute(job):
            assert signal.getsignal(signal.SIGTERM) is before
            return {"ok": True}

        runner = JobRunner(ExecOptions(jobs=1, cache=False),
                           execute=asserting_execute)
        results = runner.run([make_job("a")])
        assert results[0] == {"ok": True}

    def test_second_signal_raises_keyboard_interrupt(self):
        runner = JobRunner(ExecOptions(jobs=1, cache=False,
                                       install_signal_handlers=True))

        def double_signal(job):
            signal.raise_signal(signal.SIGINT)
            signal.raise_signal(signal.SIGINT)
            return {"label": job.label}

        runner.execute = double_signal
        with pytest.raises(KeyboardInterrupt):
            runner.run([make_job("a"), make_job("b")])
