"""Unit tests for FU availability, latency tables and graduation stats."""

import pytest

from repro.isa.opclass import FUKind, OpClass
from repro.pipeline import CoreConfig, FUPool, GraduationStats, LatencyTable


class TestLatencyTable:
    def test_table1_out_of_order_latencies(self):
        table = LatencyTable(imul=12, idiv=76, fdiv=15, fsqrt=20, fp_other=2)
        assert table.latency_of(OpClass.IMUL) == 12
        assert table.latency_of(OpClass.IDIV) == 76
        assert table.latency_of(OpClass.FDIV) == 15
        assert table.latency_of(OpClass.FSQRT) == 20
        assert table.latency_of(OpClass.FP) == 2

    def test_single_cycle_classes(self):
        table = LatencyTable()
        for op in (OpClass.IALU, OpClass.BRANCH, OpClass.MHAR_SET,
                   OpClass.MHRR_JUMP, OpClass.BLMISS, OpClass.NOP,
                   OpClass.LOAD, OpClass.STORE):
            assert table.latency_of(op) == 1


class TestCoreConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CoreConfig(name="bad", issue_width=0)
        with pytest.raises(ValueError):
            CoreConfig(name="bad", int_units=0)
        with pytest.raises(ValueError):
            CoreConfig(name="bad", mispredict_penalty=-1)


class TestFUPool:
    def make(self, **kw):
        return FUPool(CoreConfig(name="t", **kw))

    def test_int_units_exhaust(self):
        pool = self.make(int_units=2)
        pool.new_cycle()
        assert pool.try_take(FUKind.INT)
        assert pool.try_take(FUKind.INT)
        assert not pool.try_take(FUKind.INT)

    def test_new_cycle_resets(self):
        pool = self.make(int_units=1)
        pool.new_cycle()
        assert pool.try_take(FUKind.INT)
        pool.new_cycle()
        assert pool.try_take(FUKind.INT)

    def test_none_kind_is_free(self):
        pool = self.make()
        pool.new_cycle()
        for _ in range(10):
            assert pool.try_take(FUKind.NONE)

    def test_memory_on_integer_pipes_when_no_mem_unit(self):
        pool = self.make(int_units=2, mem_units=0)
        pool.new_cycle()
        assert pool.try_take(FUKind.MEMORY)
        assert pool.try_take(FUKind.INT)
        assert not pool.try_take(FUKind.MEMORY)  # both int pipes consumed
        assert pool.available(FUKind.MEMORY) == 0

    def test_dedicated_memory_unit(self):
        pool = self.make(mem_units=1)
        pool.new_cycle()
        assert pool.try_take(FUKind.MEMORY)
        assert not pool.try_take(FUKind.MEMORY)
        assert pool.try_take(FUKind.INT)  # unaffected


class TestGraduationStats:
    def test_slot_accounting(self):
        stats = GraduationStats(width=4)
        stats.record_cycle(4, cache_blame=False)
        stats.record_cycle(1, cache_blame=True)
        stats.record_cycle(0, cache_blame=False)
        assert stats.cycles == 3
        assert stats.total_slots == 12
        assert stats.busy_slots == 5
        assert stats.cache_stall_slots == 3
        assert stats.other_stall_slots == 4

    def test_breakdown_sums_to_one(self):
        stats = GraduationStats(width=4)
        stats.record_cycle(2, cache_blame=True)
        stats.record_cycle(3, cache_blame=False)
        breakdown = stats.breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_ipc(self):
        stats = GraduationStats(width=4)
        stats.record_cycle(4, False)
        stats.record_cycle(2, False)
        assert stats.ipc == pytest.approx(3.0)

    def test_overflow_rejected(self):
        stats = GraduationStats(width=4)
        with pytest.raises(ValueError):
            stats.record_cycle(5, False)

    def test_normalization(self):
        base = GraduationStats(width=4)
        run = GraduationStats(width=4)
        for _ in range(10):
            base.record_cycle(4, False)
        for _ in range(13):
            run.record_cycle(3, False)
        assert run.normalized_to(base) == pytest.approx(1.3)

    def test_normalization_width_mismatch(self):
        base = GraduationStats(width=2)
        run = GraduationStats(width=4)
        base.record_cycle(1, False)
        with pytest.raises(ValueError):
            run.normalized_to(base)

    def test_empty_breakdown(self):
        stats = GraduationStats(width=4)
        assert stats.breakdown() == {
            "busy": 0.0, "cache_stall": 0.0, "other_stall": 0.0}
