"""Unit tests for conflict-driven page remapping."""

import pytest

from repro.apps import MissCounter, PageConflictAnalyzer, remap_stream
from repro.isa import load
from repro.memory import CacheConfig
from repro.workloads import ConflictPattern
from tests.helpers import make_inorder, small_hierarchy

DM_8K = CacheConfig(size=8 * 1024, assoc=1, line_size=32)
PAGE = 4096


class TestAnalyzer:
    def test_colors(self):
        analyzer = PageConflictAnalyzer(DM_8K, page_size=PAGE)
        assert analyzer.colors == 2
        assert analyzer.color_of(0) == 0
        assert analyzer.color_of(1) == 1
        assert analyzer.color_of(2) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            PageConflictAnalyzer(DM_8K, page_size=100)
        with pytest.raises(ValueError):
            PageConflictAnalyzer(CacheConfig(size=2048, assoc=1,
                                             line_size=32), page_size=4096)

    def test_hot_pages_ranked(self):
        analyzer = PageConflictAnalyzer(DM_8K, page_size=PAGE)
        analyzer.note_miss(0 * PAGE, 5)
        analyzer.note_miss(2 * PAGE, 50)
        analyzer.note_miss(4 * PAGE, 20)
        assert [page for page, _ in analyzer.hot_pages()] == [2, 4, 0]

    def test_color_pressure(self):
        analyzer = PageConflictAnalyzer(DM_8K, page_size=PAGE)
        analyzer.note_miss(0 * PAGE, 10)  # color 0
        analyzer.note_miss(2 * PAGE, 10)  # color 0
        analyzer.note_miss(1 * PAGE, 3)   # color 1
        assert analyzer.color_pressure() == {0: 20, 1: 3}

    def test_remap_spreads_colors(self):
        analyzer = PageConflictAnalyzer(DM_8K, page_size=PAGE)
        # Three hot pages all on color 0 (the su2cor pathology).
        for page in (0, 2, 4):
            analyzer.note_miss(page * PAGE, 100)
        remap = analyzer.build_remap()
        new_colors = [analyzer.color_of(new) for new in remap.values()]
        # Three hot pages over two colors: the best possible spread is 2+1
        # rather than all three on one color.
        assert sorted(new_colors) == [0, 0, 1]
        assert len(set(remap.values())) == 3     # distinct frames

    def test_empty_profile(self):
        analyzer = PageConflictAnalyzer(DM_8K, page_size=PAGE)
        assert analyzer.build_remap() == {}


class TestRemapStream:
    def test_addresses_rewritten(self):
        trace = [load(0x0040, dest=1, pc=0), load(0x2040, dest=1, pc=4)]
        out = list(remap_stream(iter(trace), {0: 10}, page_size=PAGE))
        assert out[0].addr == 10 * PAGE + 0x40
        assert out[1].addr == 0x2040  # unmapped page untouched

    def test_empty_remap_is_identity(self):
        trace = [load(0x1234, dest=1, pc=0)]
        out = list(remap_stream(iter(trace), {}, page_size=PAGE))
        assert out[0] is trace[0]

    def test_non_memory_untouched(self):
        from repro.isa import alu
        trace = [alu(dest=1, pc=0)]
        out = list(remap_stream(iter(trace), {0: 5}, page_size=PAGE))
        assert out[0] is trace[0]


class TestEndToEnd:
    def test_remapping_removes_conflict_misses(self):
        """Profile a conflict-thrashing workload with informing ops, remap
        its pages, and verify the conflicts are gone — the full loop the
        paper's introduction sketches for operating systems ([BLRC94]'s
        large direct-mapped cache setting: plenty of colors available)."""
        from repro.isa import alu

        dm_32k = CacheConfig(size=32 * 1024, assoc=1, line_size=32)
        # L2 must exceed L1 (inclusion) for the L1 to be usable at all.
        l2_256k = CacheConfig(size=256 * 1024, assoc=2, line_size=32)
        pattern = ConflictPattern(base=0x100000, count=3, spacing=32 * 1024,
                                  sweep=4)
        trace = []
        for i in range(1500):
            trace.append(load(pattern.next_address(), dest=2,
                              pc=0x100 + 4 * (i % 3)))
            for c in range(3):  # dependent use: misses cost real time
                trace.append(alu(dest=3, srcs=(2 if c == 0 else 3,),
                                 pc=0x200 + 4 * c))

        hierarchy = small_hierarchy(l1=dm_32k, l2=l2_256k)
        counter = MissCounter(track_addresses=True)
        profile_core = make_inorder(hierarchy=hierarchy,
                                    informing=counter.informing_config())
        before_stats = profile_core.run(iter(list(trace)))
        before_misses = (profile_core.hierarchy.stats.l1_misses
                         + profile_core.hierarchy.stats.l1_secondary_misses)
        assert before_misses > 1000  # thrashing

        analyzer = PageConflictAnalyzer(dm_32k, page_size=PAGE)
        analyzer.note_profile(counter.by_addr)
        remap = analyzer.build_remap(threshold=10)
        assert remap
        new_colors = {analyzer.color_of(p) for p in remap.values()}
        assert len(new_colors) == 3  # each hot page gets its own color

        after_core = make_inorder(hierarchy=small_hierarchy(l1=dm_32k, l2=l2_256k))
        after_stats = after_core.run(
            remap_stream(iter(list(trace)), remap, PAGE))
        after_misses = (after_core.hierarchy.stats.l1_misses
                        + after_core.hierarchy.stats.l1_secondary_misses)
        assert after_misses < before_misses * 0.5
        assert after_stats.cycles < before_stats.cycles * 0.8
