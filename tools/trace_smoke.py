"""CI smoke test for repro.trace, end to end and out of process.

Boots ``python -m repro.serve`` as a real subprocess (ephemeral port,
ready-file handshake), then:

1. submits one cell under a client-side span whose ``traceparent``
   header the gateway must continue, flushes the client span into the
   served run's ``spans.jsonl``, and requires ``harness spans --check``
   to find ONE connected tree with spans from both processes and a
   critical path that agrees with the measured request wall;
2. verifies the traced served result is digit-exact against a direct
   untraced in-process JobRunner run of the same SimJob;
3. runs a traced ``jobs=2`` pool grid in-process and requires the same
   ``--check`` to prove the pool workers joined the run's trace
   (>= 2 pids, one root);
4. sends SIGTERM and requires a clean drain: exit code 0 and a
   ``serve_drain`` flight-recorder dump in the trace directory.

Usage::

    PYTHONPATH=src python tools/trace_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.exec import ExecOptions, JobRunner, SimJob
from repro.serve import ServeClient, validate_job_spec
from repro.trace import Tracer, TraceContext, format_traceparent

SPEC = {"kind": "bar", "benchmark": "compress", "machine": "ooo",
        "label": "S10", "instructions": 2000, "warmup": 500, "seed": 0}


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def wait_for_ready(ready_file: Path, process, timeout: float = 30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            fail(f"server exited early with code {process.returncode}")
        if ready_file.exists() and ready_file.read_text().strip():
            host, port = ready_file.read_text().split()
            return host, int(port)
        time.sleep(0.05)
    fail("server did not become ready in time")


def check_spans(ref: str, *args: str) -> None:
    """Run ``harness spans <ref> --check ...`` as a real CLI call."""
    argv = [sys.executable, "-m", "repro.harness", "spans", ref,
            "--check", *args]
    proc = subprocess.run(argv, capture_output=True, text=True)
    sys.stdout.write(proc.stdout)
    if proc.returncode != 0:
        fail(f"harness spans --check exited {proc.returncode}:\n"
             f"{proc.stderr}")


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="trace-smoke-"))
    ready = workdir / "ready"
    trace_dir = workdir / "trace"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0",
         "--shards", "2",
         "--cache-dir", str(workdir / "cache"),
         "--manifest-dir", str(workdir / "runs"),
         "--trace-dir", str(trace_dir),
         "--ready-file", str(ready)])
    try:
        host, port = wait_for_ready(ready, process)
        print(f"server up at {host}:{port}")

        # 1. One request under a client-side span: the trace must cross
        # the HTTP boundary and come back as one connected tree.
        tracer = Tracer()
        with ServeClient(host, port, timeout=60) as client:
            started = time.time()
            with tracer.span("client.request") as span:
                header = format_traceparent(TraceContext(
                    tracer.trace_id, span.span_id, sampled=True))
                status, outcome = client.submit(SPEC, traceparent=header)
            wall = time.time() - started
        if status != 200:
            fail(f"submit: {status} {outcome}")
        meta = outcome["meta"]
        if meta.get("trace_id") != tracer.trace_id:
            fail(f"gateway did not continue the client trace: "
                 f"{meta.get('trace_id')} != {tracer.trace_id}")
        spans_path = meta.get("spans")
        if not spans_path or not os.path.isfile(spans_path):
            fail(f"no spans artifact for the served run: {spans_path!r}")
        # The client is a process in this trace too: flush its span to
        # the same collection point before analyzing.
        if tracer.flush(spans_path) != 1:
            fail("client span did not flush into the run's spans.jsonl")
        check_spans(spans_path, "--expect-processes", "2",
                    "--wall", f"{wall:.6f}")
        print(f"cross-process span tree OK ({wall:.2f}s request)")

        # 2. Digit-exact parity: tracing must not perturb results.
        direct = JobRunner(ExecOptions(jobs=1, cache=False)).run(
            [validate_job_spec(SPEC)])[0]
        if outcome["result"] != direct:
            fail("traced served result differs from a direct "
                 "untraced JobRunner run")
        print("digit-exact parity OK")

        # 3. Pool propagation: a jobs=2 grid with sampling on must show
        # worker pids inside the same tree as the parent's run span.
        pool_runs = workdir / "pool_runs"
        runner = JobRunner(ExecOptions(jobs=2, cache=False,
                                       trace_sample=1.0,
                                       manifest_dir=str(pool_runs)))
        runner.run([SimJob.bar(benchmark="compress", machine="ooo",
                               label=label, instructions=2000,
                               warmup=500, seed=0)
                    for label in ("N", "S1", "S10", "U10")])
        manifest = json.loads(Path(runner.last_manifest).read_text())
        check_spans(manifest["run_id"], "--expect-processes", "2",
                    "--manifest-dir", str(pool_runs))
        print(f"pool span propagation OK (run {manifest['run_id']})")

        # 4. Clean shutdown, with drain forensics.
        process.send_signal(signal.SIGTERM)
        code = process.wait(timeout=30)
        if code != 0:
            fail(f"server exited with {code} after SIGTERM")
        dumps = list(trace_dir.glob("flight_serve_drain_*.json"))
        if len(dumps) != 1:
            fail(f"expected one serve_drain flight dump in {trace_dir}, "
                 f"found {[d.name for d in dumps]}")
        print("graceful shutdown OK (serve_drain flight dump written)")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)
    print("trace smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
