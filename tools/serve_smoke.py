"""CI smoke test for the repro.serve gateway, out of process.

Boots ``python -m repro.serve`` as a real subprocess (ephemeral port,
ready-file handshake), then:

1. submits a tiny cell and verifies the served result is digit-exact
   against a direct in-process JobRunner run of the same SimJob;
2. exercises coalescing: two identical *uncached* concurrent requests
   must produce exactly one execution and one coalesce;
3. scrapes ``/healthz`` and ``/metrics`` (the exposition must parse
   back losslessly) and fetches the served run's manifest;
4. sends SIGTERM and requires a clean drain: exit code 0.

Usage::

    PYTHONPATH=src python tools/serve_smoke.py
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.exec import ExecOptions, JobRunner
from repro.obs.export import parse_openmetrics
from repro.serve import ServeClient, validate_job_spec

SPEC = {"kind": "bar", "benchmark": "compress", "machine": "ooo",
        "label": "S10", "instructions": 2000, "warmup": 500, "seed": 0}


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def wait_for_ready(ready_file: Path, process, timeout: float = 30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            fail(f"server exited early with code {process.returncode}")
        if ready_file.exists() and ready_file.read_text().strip():
            host, port = ready_file.read_text().split()
            return host, int(port)
        time.sleep(0.05)
    fail("server did not become ready in time")


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="serve-smoke-"))
    ready = workdir / "ready"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0",
         "--shards", "2",
         "--cache-dir", str(workdir / "cache"),
         "--manifest-dir", str(workdir / "runs"),
         "--ready-file", str(ready)])
    try:
        host, port = wait_for_ready(ready, process)
        print(f"server up at {host}:{port}")

        with ServeClient(host, port, timeout=60) as client:
            status, health = client.healthz()
            if status != 200 or health["status"] != "ok":
                fail(f"healthz: {status} {health}")
            print("healthz OK")

            # 1. Digit-exact parity with a direct engine run.
            status, outcome = client.submit(SPEC)
            if status != 200:
                fail(f"submit: {status} {outcome}")
            direct = JobRunner(ExecOptions(jobs=1, cache=False)).run(
                [validate_job_spec(SPEC)])[0]
            if outcome["result"] != direct:
                fail("served result differs from a direct JobRunner run")
            print("digit-exact parity OK")

            # 2. Coalescing: identical uncached concurrent requests.
            proof = dict(SPEC, seed=777, instructions=20_000, warmup=2_000)
            outcomes = [None, None]

            def submit(slot):
                with ServeClient(host, port, timeout=60) as c:
                    outcomes[slot] = c.submit(proof)

            threads = [threading.Thread(target=submit, args=(i,))
                       for i in (0, 1)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            if any(s != 200 for s, _ in outcomes):
                fail(f"coalesce submissions failed: {outcomes}")
            if outcomes[0][1]["result"] != outcomes[1][1]["result"]:
                fail("coalesced twins returned different results")

            # 3. Metrics: scrape, parse back, check the proof counters.
            status, text = client.metrics_text()
            if status != 200:
                fail(f"/metrics: {status}")
            counters = parse_openmetrics(text)["counters"]
            executed = counters.get("serve_executed")
            coalesced = counters.get("serve_coalesced")
            # Exactly 2 executions total: the parity cell + one (not
            # two!) for the coalesced twins.
            if executed != 2 or coalesced != 1:
                fail(f"coalesce proof: executed={executed} "
                     f"coalesced={coalesced} (want 2 and 1)")
            print("coalescing OK (executed=2 total, coalesced=1)")

            run_id = outcome["meta"]["run_id"]
            status, manifest = client.run_manifest(run_id)
            if status != 200 or manifest["run_id"] != run_id:
                fail(f"/runs/{run_id}: {status}")
            print(f"manifest lookup OK ({run_id})")

        # 4. Clean shutdown on SIGTERM.
        process.send_signal(signal.SIGTERM)
        code = process.wait(timeout=30)
        if code != 0:
            fail(f"server exited with {code} after SIGTERM")
        print("graceful shutdown OK")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)
    print("serve smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
