"""CI smoke test for kill-and-resume, out of process.

Launches ``python -m repro.harness figure2 --quick`` as a real
subprocess with a run journal, SIGKILLs it partway through the grid
(the honest crash — no cleanup handlers run), then:

1. ``python -m repro.harness resume <run_id>`` must finish the grid
   with exit code 0;
2. the resumed results must be digit-exact against
   ``results/golden/figure2_quick.json`` — every field of every cell;
3. zero journal-completed cells may re-execute: the resumed run's
   manifest must show ``replayed`` equal to the journal's completed
   count and ``executed`` covering exactly the remainder.

Usage::

    PYTHONPATH=src python tools/crash_resume_smoke.py [--backend vec]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.durable import load_run_state, read_records

GOLDEN = Path(__file__).resolve().parent.parent / "results" / "golden" / \
    "figure2_quick.json"

#: SIGKILL once this many cells are journaled as finished.
KILL_AFTER_FINISHES = 8


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def find_journal(runs_root: Path, deadline: float) -> Path:
    while time.monotonic() < deadline:
        journals = list(runs_root.glob("*/journal.jsonl"))
        if journals:
            return journals[0]
        time.sleep(0.05)
    fail(f"no journal appeared under {runs_root}")


def count_finishes(journal: Path) -> int:
    records, _, _ = read_records(str(journal))
    return sum(1 for r in records if r.get("rec") == "job_finish")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", choices=("interp", "vec"),
                        default="interp")
    parser.add_argument("--jobs", type=int, default=2)
    args = parser.parse_args()

    workdir = Path(tempfile.mkdtemp(prefix="crash-resume-"))
    runs_root = workdir / "runs"
    env = dict(os.environ, REPRO_CACHE_DIR=str(workdir / "cache"))
    command = [sys.executable, "-m", "repro.harness", "figure2", "--quick",
               "--jobs", str(args.jobs), "--no-bench",
               "--manifest-dir", str(runs_root),
               "--backend", args.backend]
    print(f"launching: {' '.join(command[2:])}")
    # Own session so the SIGKILL takes the pool workers too; an orphaned
    # worker would otherwise keep running (and keep CI pipes open).
    process = subprocess.Popen(command, env=env,
                               stdout=subprocess.DEVNULL,
                               start_new_session=True)
    try:
        journal = find_journal(runs_root, time.monotonic() + 60)
        run_id = journal.parent.name
        print(f"journal up: {run_id}")

        deadline = time.monotonic() + 300
        while time.monotonic() < deadline:
            if process.poll() is not None:
                fail(f"run finished (code {process.returncode}) before "
                     f"the kill; raise the grid size or lower "
                     f"KILL_AFTER_FINISHES")
            if count_finishes(journal) >= KILL_AFTER_FINISHES:
                break
            time.sleep(0.05)
        else:
            fail("grid never reached the kill threshold")
        os.killpg(process.pid, signal.SIGKILL)
        process.wait(timeout=30)
    finally:
        if process.poll() is None:
            os.killpg(process.pid, signal.SIGKILL)
            process.wait(timeout=10)

    state = load_run_state(run_id, str(runs_root))
    completed = len(state.completed)
    total = len(state.job_records)
    if not state.incomplete:
        fail("nothing left incomplete after the kill; smoke is vacuous")
    print(f"SIGKILLed mid-grid: {completed}/{total} cells journaled "
          f"complete, {len(state.incomplete)} to go "
          f"(journal tail torn: {state.truncated})")

    resumed_json = workdir / "resumed.json"
    resume = subprocess.run(
        [sys.executable, "-m", "repro.harness", "resume", run_id,
         "--runs-root", str(runs_root), "--jobs", str(args.jobs),
         "--backend", args.backend, "--quiet",
         "--json", str(resumed_json)],
        env=env, capture_output=True, text=True, timeout=1800)
    sys.stdout.write(resume.stdout)
    if resume.returncode != 0:
        sys.stderr.write(resume.stderr)
        fail(f"resume exited {resume.returncode}")

    # 2. Digit-exact against the golden figure.
    golden = json.loads(GOLDEN.read_text())
    resumed = json.loads(resumed_json.read_text())
    if resumed["name"] != golden["name"]:
        fail(f"figure name drifted: {resumed['name']}")
    if len(resumed["bars"]) != len(golden["bars"]):
        fail(f"cell count {len(resumed['bars'])} != {len(golden['bars'])}")
    for index, (got, want) in enumerate(zip(resumed["bars"],
                                            golden["bars"])):
        if got != want:
            fail(f"cell {index} "
                 f"({want['benchmark']}/{want['machine']}/{want['label']}) "
                 f"differs from golden after resume")
    print(f"digit-exact vs golden OK ({len(golden['bars'])} cells, "
          f"backend={args.backend})")

    # 3. Zero completed cells re-executed.
    manifests = sorted(runs_root.glob("*/manifest.json"))
    stats = None
    for path in manifests:
        manifest = json.loads(path.read_text())
        if manifest.get("resumed_from") == run_id:
            stats = manifest["stats"]
            break
    if stats is None:
        fail("no manifest claims resumed_from the killed run")
    if stats["replayed"] != completed:
        fail(f"replayed {stats['replayed']} != journal-completed "
             f"{completed}: a completed cell re-executed (or got lost)")
    if stats["executed"] + stats["cache_hits"] != total - completed:
        fail(f"executed {stats['executed']} + cache_hits "
             f"{stats['cache_hits']} != {total - completed} incomplete "
             f"cells")
    print(f"no re-execution of completed cells OK "
          f"(replayed={stats['replayed']}, executed={stats['executed']}, "
          f"cache_hits={stats['cache_hits']})")

    print("crash-resume smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
