"""Quick cycle-exactness check against the golden figure2 --quick capture.

Usage: PYTHONPATH=src python tools/check_parity.py [N_CELLS]

Re-runs a sample of golden cells through run_bar and diffs every exported
field.  Exit status 0 on byte-identical results.  Used while developing
hot-path optimizations; the committed regression test is
tests/test_golden_parity.py.
"""

import json
import sys
import time

from repro.harness.export import _BAR_FIELDS
from repro.harness.runner import bar_config, run_bar

GOLDEN = "results/golden/figure2_quick.json"
QUICK_INSTRUCTIONS = 7500
QUICK_WARMUP = 3750


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    rows = json.load(open(GOLDEN))["bars"]
    sample = rows[:: max(1, len(rows) // n)][:n] if n < len(rows) else rows
    bad = 0
    t0 = time.perf_counter()
    for row in sample:
        result = run_bar(row["benchmark"], row["machine"],
                         bar_config(row["label"]),
                         QUICK_INSTRUCTIONS, QUICK_WARMUP)
        for field in _BAR_FIELDS:
            if field == "normalized":
                continue
            got = getattr(result, field)
            if got != row[field]:
                bad += 1
                print(f"MISMATCH {row['benchmark']}/{row['machine']}/"
                      f"{row['label']} {field}: got {got!r} "
                      f"want {row[field]!r}")
                break
    wall = time.perf_counter() - t0
    print(f"{len(sample)} cells, {bad} mismatches, {wall:.2f}s "
          f"({wall / len(sample):.3f}s/cell)")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
